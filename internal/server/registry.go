package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"structmine/internal/relation"
	"structmine/internal/store"
	"structmine/internal/task"
)

// ErrDatasetLimit reports that the registry is at its configured
// capacity and refuses to make another relation resident.
var ErrDatasetLimit = errors.New("server: dataset limit reached")

// Dataset is one registered relation instance: the parsed relation and
// its instance statistics stay resident so repeated jobs never re-parse.
type Dataset struct {
	// ID is the short display address: a prefix of Hash, extended just
	// far enough to be unambiguous among registered datasets.
	ID   string `json:"id"`
	Name string `json:"name"`
	// Hash is the full SHA-256 of the CSV bytes — the dataset's true
	// identity. It keys the registry, prefixes every cache key, and is
	// itself accepted anywhere an id is.
	Hash string `json:"hash"`
	// Source records where the data came from ("upload" or a file path).
	Source string `json:"source"`
	// Bytes is the size of the registered CSV source — the residency
	// cost proxy behind the structmined_dataset_resident_bytes gauge.
	Bytes   int64                `json:"bytes"`
	Summary *task.DescribeResult `json:"summary"`

	rel *relation.Relation
}

// Relation returns the resident parsed instance.
func (d *Dataset) Relation() *relation.Relation { return d.rel }

// Registry owns the resident datasets, keyed on the full content hash.
// Short ids are aliases: a hash prefix extended on collision, never
// silently resolving to a different dataset's content. All methods are
// safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	byHash map[string]*Dataset
	alias  map[string]string // short id → full hash
	lim    relation.Limits
	max    int // resident-dataset cap (0 = unlimited)

	// st, when non-nil, makes registration durable: a dataset snapshot
	// is written before the relation becomes resident, so a restarted
	// server re-adopts it without re-parsing the CSV.
	st *store.Store
}

// shortIDLen is the initial alias length: 12 hex digits of SHA-256.
const shortIDLen = 12

// NewRegistry returns an empty registry whose CSV parsing enforces lim
// and which holds at most max resident datasets (0 = unlimited).
func NewRegistry(lim relation.Limits, max int) *Registry {
	return &Registry{
		byHash: map[string]*Dataset{},
		alias:  map[string]string{},
		lim:    lim,
		max:    max,
	}
}

// assignIDLocked picks the shortest prefix of hash (starting at
// shortIDLen) that does not alias a different dataset's hash. The
// caller holds g.mu; hash itself is not yet registered, so the loop
// always terminates — the full hash is unique by construction.
func (g *Registry) assignIDLocked(hash string) string {
	for n := shortIDLen; n <= len(hash); n += 4 {
		id := hash[:n]
		if prior, ok := g.alias[id]; !ok || prior == hash {
			return id
		}
	}
	return hash
}

// RegisterCSV parses CSV bytes and registers the resulting relation. It
// is idempotent on content: re-registering the same bytes returns the
// existing dataset (and reports created=false).
func (g *Registry) RegisterCSV(name, source string, data []byte) (ds *Dataset, created bool, err error) {
	sum := sha256.Sum256(data)
	hash := hex.EncodeToString(sum[:])

	g.mu.RLock()
	existing := g.byHash[hash]
	g.mu.RUnlock()
	if existing != nil {
		return existing, false, nil
	}

	if name == "" {
		name = "dataset-" + hash[:shortIDLen]
	}
	rel, err := relation.ReadCSVLimited(name, bytes.NewReader(data), g.lim)
	if err != nil {
		return nil, false, err
	}
	summary := task.Describe(rel)

	g.mu.Lock()
	defer g.mu.Unlock()
	if prior, ok := g.byHash[hash]; ok { // lost a registration race
		return prior, false, nil
	}
	if g.max > 0 && len(g.byHash) >= g.max {
		return nil, false, fmt.Errorf("%w (%d resident)", ErrDatasetLimit, len(g.byHash))
	}
	ds = &Dataset{
		ID: g.assignIDLocked(hash), Name: name, Hash: hash, Source: source,
		Bytes: int64(len(data)), Summary: summary, rel: rel,
	}
	// Durability before residency: if the snapshot cannot be written the
	// registration fails outright, so the server never carries datasets a
	// restart would silently forget.
	if g.st != nil {
		meta := store.DatasetMeta{Hash: hash, Name: name, Source: source, Bytes: int64(len(data))}
		if err := g.st.SaveDataset(meta, rel); err != nil {
			return nil, false, fmt.Errorf("%w: %v", ErrStoreWrite, err)
		}
	}
	g.byHash[hash] = ds
	g.alias[ds.ID] = hash
	return ds, true, nil
}

// Adopt makes a dataset recovered from the durable store resident
// without re-writing its snapshot. Instance statistics are recomputed
// from the decoded relation. Already-resident content is returned as
// is; the resident cap still applies (a nil return means the snapshot
// stays on disk but is not adopted).
func (g *Registry) Adopt(meta store.DatasetMeta, rel *relation.Relation) *Dataset {
	summary := task.Describe(rel)
	g.mu.Lock()
	defer g.mu.Unlock()
	if prior, ok := g.byHash[meta.Hash]; ok {
		return prior
	}
	if g.max > 0 && len(g.byHash) >= g.max {
		return nil
	}
	ds := &Dataset{
		ID: g.assignIDLocked(meta.Hash), Name: meta.Name, Hash: meta.Hash,
		Source: meta.Source, Bytes: meta.Bytes, Summary: summary, rel: rel,
	}
	g.byHash[meta.Hash] = ds
	g.alias[ds.ID] = meta.Hash
	return ds
}

// RegisterPath reads a CSV file from the server's filesystem and
// registers it under its base name.
func (g *Registry) RegisterPath(path string) (*Dataset, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, fmt.Errorf("server: reading dataset: %w", err)
	}
	return g.RegisterCSV(filepath.Base(path), path, data)
}

// Get returns the dataset with the given short id or full content hash.
func (g *Registry) Get(id string) (*Dataset, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if hash, ok := g.alias[id]; ok {
		return g.byHash[hash], true
	}
	ds, ok := g.byHash[id]
	return ds, ok
}

// List returns every dataset, ordered by id.
func (g *Registry) List() []*Dataset {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]*Dataset, 0, len(g.byHash))
	for _, ds := range g.byHash {
		out = append(out, ds)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of registered datasets.
func (g *Registry) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.byHash)
}

// ResidentBytes returns the total CSV source size of every resident
// dataset.
func (g *Registry) ResidentBytes() int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var total int64
	for _, ds := range g.byHash {
		total += ds.Bytes
	}
	return total
}
