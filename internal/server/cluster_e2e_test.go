package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"structmine/internal/cluster"
)

// swapHandler lets a test start an httptest listener (to learn its
// URL) before the Server that will answer on it exists — the cluster
// router needs every peer URL at construction time.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// clusterNode is one replica of a test cluster.
type clusterNode struct {
	srv    *Server
	ts     *httptest.Server
	router *cluster.Router
}

// newTestCluster stands up n replicas on loopback, each in router mode
// with the full peer set.
func newTestCluster(t *testing.T, n int, cfg Config) []clusterNode {
	t.Helper()
	swaps := make([]*swapHandler, n)
	nodes := make([]clusterNode, n)
	peers := make([]string, n)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		nodes[i].ts = httptest.NewServer(swaps[i])
		peers[i] = nodes[i].ts.URL
	}
	for i := range nodes {
		rt, err := cluster.New(peers[i], peers, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.Router = rt
		nodes[i].router = rt
		nodes[i].srv = New(c)
		swaps[i].set(nodes[i].srv.Handler())
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.ts.Close()
			n.router.Close()
			func() {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer cancel()
				_ = n.srv.Shutdown(ctx)
			}()
		}
	})
	return nodes
}

// doReq is doJSON with explicit headers, returning the raw response.
func doReq(t *testing.T, method, url string, headers map[string]string, body []byte) (int, http.Header, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(raw)
}

// proxiedCount extracts this node's proxied-request counter toward a
// peer from a /metrics scrape (0 when the sample is absent).
func proxiedCount(metrics, peer string) float64 {
	prefix := `structmine_cluster_proxied_requests_total{peer="` + peer + `"} `
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, prefix) {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, prefix), "%g", &v); err == nil {
				return v
			}
		}
	}
	return 0
}

// ownerAndOther splits a 2-node cluster by who owns the hash.
func ownerAndOther(t *testing.T, nodes []clusterNode, hash string) (owner, other clusterNode) {
	t.Helper()
	ownerID := nodes[0].router.Owner(hash).ID
	for _, n := range nodes {
		if n.ts.URL == ownerID {
			owner = n
		} else {
			other = n
		}
	}
	if owner.srv == nil || other.srv == nil {
		t.Fatalf("could not split cluster by owner %s", ownerID)
	}
	return owner, other
}

// TestClusterProxyRegisterAndMine is the tentpole proof: a dataset
// registered through either replica lands on its rendezvous owner, is
// minable through the other replica, and the proxied artifact is
// byte-identical to asking the owner directly.
func TestClusterProxyRegisterAndMine(t *testing.T) {
	nodes := newTestCluster(t, 2, Config{Workers: 1})
	csv := db2CSV(t)

	// Register through node 0 — wherever the rendezvous table says the
	// content lives, that is where it registers.
	var ds Dataset
	code, body := doJSON(t, "POST", nodes[0].ts.URL+"/v1/datasets?name=db2", csv, &ds)
	if code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	owner, other := ownerAndOther(t, nodes, ds.Hash)
	if _, ok := owner.srv.reg.Get(ds.ID); !ok {
		t.Fatalf("dataset not on its rendezvous owner %s", owner.ts.URL)
	}
	if _, ok := other.srv.reg.Get(ds.ID); ok {
		t.Fatal("dataset replicated to the non-owner, want owner-only")
	}

	// Registering the same content through the other node is proxied
	// and idempotent: 200, same identity.
	var again Dataset
	if code, body := doJSON(t, "POST", other.ts.URL+"/v1/datasets?name=db2", csv, &again); code != http.StatusOK || again.ID != ds.ID {
		t.Fatalf("re-register via non-owner: %d %s", code, body)
	}

	// The dataset reads identically through both replicas.
	_, _, direct := doReq(t, "GET", owner.ts.URL+"/v1/datasets/"+ds.ID, nil, nil)
	codeP, _, proxied := doReq(t, "GET", other.ts.URL+"/v1/datasets/"+ds.ID, nil, nil)
	if codeP != http.StatusOK || proxied != direct {
		t.Fatalf("proxied dataset read differs (code %d):\n%s\n--- direct\n%s", codeP, proxied, direct)
	}

	// Submit rank-fds through the NON-owner: the job runs on the owner,
	// and polls through the non-owner resolve via its route memory.
	var job JobView
	code, body = doJSON(t, "POST", other.ts.URL+"/v1/jobs",
		submitRequest{Dataset: ds.ID, Task: "rank-fds"}, &job)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit via non-owner: %d %s", code, body)
	}
	if _, ok := owner.srv.jobs.Get(job.ID); !ok {
		t.Fatalf("job %s did not land on the dataset owner", job.ID)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var v JobView
		if code, body := doJSON(t, "GET", other.ts.URL+"/v1/jobs/"+job.ID, nil, &v); code != http.StatusOK {
			t.Fatalf("poll via non-owner: %d %s", code, body)
		} else if v.State.Terminal() {
			if v.State != StateDone {
				t.Fatalf("job %s: %s (%s)", job.ID, v.State, v.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish", job.ID)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The artifact fetched through the proxy is byte-identical to the
	// owner's direct answer.
	codeD, _, resultDirect := doReq(t, "GET", owner.ts.URL+"/v1/jobs/"+job.ID+"/result", nil, nil)
	codeV, _, resultVia := doReq(t, "GET", other.ts.URL+"/v1/jobs/"+job.ID+"/result", nil, nil)
	if codeD != http.StatusOK || codeV != http.StatusOK {
		t.Fatalf("result codes: direct %d, proxied %d", codeD, codeV)
	}
	if resultVia != resultDirect {
		t.Fatal("proxied rank-fds artifact is not byte-identical to the owner's")
	}

	// A scatter lookup also finds the job: a fresh request through the
	// non-owner for a job id it has no memory of (clear via a new id —
	// use the trace endpoint, which shares routeJob).
	if code, _, _ := doReq(t, "GET", other.ts.URL+"/v1/jobs/"+job.ID+"/trace", nil, nil); code != http.StatusOK {
		t.Fatalf("trace via non-owner: %d", code)
	}
}

// TestClusterHopLoopGuard pins the one-hop invariant: a request that
// already crossed a proxy hop is answered from local state even when
// this node does not own the key — no second hop, no loop.
func TestClusterHopLoopGuard(t *testing.T) {
	nodes := newTestCluster(t, 2, Config{})
	csv := db2CSV(t)
	var ds Dataset
	if code, body := doJSON(t, "POST", nodes[0].ts.URL+"/v1/datasets?name=db2", csv, &ds); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	_, other := ownerAndOther(t, nodes, ds.Hash)

	// Without the hop header the non-owner proxies (200); with it, the
	// non-owner must answer from its own empty registry: 404.
	if code, _, _ := doReq(t, "GET", other.ts.URL+"/v1/datasets/"+ds.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("proxied get: %d, want 200", code)
	}
	code, _, body := doReq(t, "GET", other.ts.URL+"/v1/datasets/"+ds.ID,
		map[string]string{cluster.HopHeader: "1"}, nil)
	if code != http.StatusNotFound || !strings.Contains(body, CodeDatasetNotFound) {
		t.Fatalf("hopped get on non-owner: %d %s, want local 404", code, body)
	}
}

// TestClusterPeerUnavailable pins the 503 envelope: when a dataset's
// owner is down, the surviving replica answers 503 peer_unavailable
// rather than hanging or mis-serving.
func TestClusterPeerUnavailable(t *testing.T) {
	nodes := newTestCluster(t, 2, Config{})
	csv := db2CSV(t)
	var ds Dataset
	if code, body := doJSON(t, "POST", nodes[0].ts.URL+"/v1/datasets?name=db2", csv, &ds); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	owner, other := ownerAndOther(t, nodes, ds.Hash)
	owner.ts.Close()

	// First request hits the dead peer (transport error → 503), later
	// ones shortcut on the unhealthy mark; both carry the envelope.
	for i := 0; i < 2; i++ {
		code, _, body := doReq(t, "GET", other.ts.URL+"/v1/datasets/"+ds.ID, nil, nil)
		if code != http.StatusServiceUnavailable || !strings.Contains(body, CodePeerUnavailable) {
			t.Fatalf("request %d with owner down: %d %s, want 503 %s", i, code, body, CodePeerUnavailable)
		}
	}

	// The survivor's own surfaces stay healthy and node-local.
	var h healthz
	if code, _ := doJSON(t, "GET", other.ts.URL+"/v1/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz on survivor: %d", code)
	}
	if h.Node != other.ts.URL {
		t.Fatalf("healthz node = %q, want the answering node %q", h.Node, other.ts.URL)
	}
	if h.Cluster == nil || h.Cluster.Peers != 2 || h.Cluster.HealthyPeers != 1 {
		t.Fatalf("healthz cluster = %+v, want 2 peers / 1 healthy", h.Cluster)
	}
}

// TestClusterMetricsNodeLocal is the satellite bugfix guard: /metrics
// and /v1/healthz report the answering node's state even in router
// mode, and the cluster families carry this node's view (its proxied
// counts, its peers' health), never a peer's registry.
func TestClusterMetricsNodeLocal(t *testing.T) {
	nodes := newTestCluster(t, 2, Config{})
	csv := db2CSV(t)
	var ds Dataset
	if code, body := doJSON(t, "POST", nodes[0].ts.URL+"/v1/datasets?name=db2", csv, &ds); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	owner, other := ownerAndOther(t, nodes, ds.Hash)

	// Drive one proxied read through the non-owner.
	if code, _, _ := doReq(t, "GET", other.ts.URL+"/v1/datasets/"+ds.ID, nil, nil); code != http.StatusOK {
		t.Fatal("proxied read failed")
	}

	_, _, otherMetrics := doReq(t, "GET", other.ts.URL+"/v1/metrics", nil, nil)
	_, _, ownerMetrics := doReq(t, "GET", owner.ts.URL+"/v1/metrics", nil, nil)

	// The proxying node counted the hop (the initial register may have
	// hopped too, so >= 1), labeled with the peer it forwarded to; the
	// owner — which forwarded nothing — exports no count toward the
	// other node.
	if n := proxiedCount(otherMetrics, owner.ts.URL); n < 1 {
		t.Fatalf("non-owner proxied count toward owner = %g, want >= 1", n)
	}
	if n := proxiedCount(ownerMetrics, other.ts.URL); n != 0 {
		t.Fatalf("owner counted %g proxied requests it never made", n)
	}
	for _, m := range []string{otherMetrics, ownerMetrics} {
		for _, fam := range []string{
			"structmine_cluster_proxied_requests_total",
			"structmine_cluster_peer_unhealthy",
			"structmine_cluster_owner_moves_total",
		} {
			if !strings.Contains(m, fam) {
				t.Fatalf("metrics missing cluster family %s", fam)
			}
		}
	}

	// A node must never label cluster metrics with itself as a peer.
	if strings.Contains(otherMetrics, `peer_unhealthy{peer="`+other.ts.URL+`"}`) {
		t.Fatal("node exports a peer_unhealthy gauge for itself")
	}

	// Healthz through each node names that node.
	for _, n := range []clusterNode{owner, other} {
		var h healthz
		if code, _ := doJSON(t, "GET", n.ts.URL+"/v1/healthz", nil, &h); code != http.StatusOK || h.Node != n.ts.URL {
			t.Fatalf("healthz via %s: code %d node %q", n.ts.URL, code, h.Node)
		}
	}
}

// TestClusterOwnerMoves pins the owner-move counter: a dataset held
// locally against the rendezvous table's choice (here: planted via a
// hopped register, as after a topology change) is served locally and
// counted.
func TestClusterOwnerMoves(t *testing.T) {
	nodes := newTestCluster(t, 2, Config{})
	csv := db2CSV(t)

	// Find which node does NOT own this content, and plant the dataset
	// there with a hopped register (hop = answer locally, no proxy).
	var probe Dataset
	if code, body := doJSON(t, "POST", nodes[0].ts.URL+"/v1/datasets?name=db2", csv, &probe); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	_, other := ownerAndOther(t, nodes, probe.Hash)
	code, _, _ := doReq(t, "POST", other.ts.URL+"/v1/datasets?name=db2", map[string]string{
		cluster.HopHeader: "1", "Content-Type": "text/csv",
	}, csv)
	if code != http.StatusCreated {
		t.Fatalf("hopped register on non-owner: %d", code)
	}

	// Reads through the non-owner now serve locally (local-first) and
	// count an owner move.
	if code, _, _ := doReq(t, "GET", other.ts.URL+"/v1/datasets/"+probe.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("local-first read: %d", code)
	}
	_, _, metrics := doReq(t, "GET", other.ts.URL+"/v1/metrics", nil, nil)
	if !strings.Contains(metrics, "structmine_cluster_owner_moves_total 1") {
		t.Fatal("owner move not counted")
	}
}
