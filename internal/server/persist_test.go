package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"structmine/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServerWarmRestart is the crash-recovery contract end to end: a
// persistent server is registered and queried, torn down, and rebuilt
// over the same data directory. The successor must list the dataset,
// answer polls for the old job id, serve the old artifact byte-for-byte,
// and answer the identical resubmission as a cache hit without
// re-running the miner.
func TestServerWarmRestart(t *testing.T) {
	dir := t.TempDir()

	st1 := openStore(t, dir)
	s1 := New(Config{Workers: 1, Store: st1})
	ts1 := httptest.NewServer(s1.Handler())

	var ds Dataset
	if code, body := doJSON(t, "POST", ts1.URL+"/v1/datasets?name=db2", db2CSV(t), &ds); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	var v JobView
	if code, body := doJSON(t, "POST", ts1.URL+"/v1/jobs",
		submitRequest{Dataset: ds.ID, Task: "rank-fds"}, &v); code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	if got := waitJob(t, ts1, v.ID); got.State != StateDone {
		t.Fatalf("job state = %s (%s)", got.State, got.Error)
	}
	var before struct {
		Result any `json:"result"`
	}
	if code, body := doJSON(t, "GET", ts1.URL+"/v1/jobs/"+v.ID+"/result", nil, &before); code != http.StatusOK {
		t.Fatalf("result: %d %s", code, body)
	}

	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life over the same directory.
	st2 := openStore(t, dir)
	defer st2.Close()
	s2 := New(Config{Workers: 1, Store: st2})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Shutdown(context.Background())

	// The dataset is resident again, same identity.
	var page struct {
		Items []Dataset `json:"items"`
	}
	if code, body := doJSON(t, "GET", ts2.URL+"/v1/datasets", nil, &page); code != http.StatusOK {
		t.Fatalf("list: %d %s", code, body)
	}
	list := page.Items
	if len(list) != 1 || list[0].Hash != ds.Hash || list[0].ID != ds.ID {
		t.Fatalf("recovered datasets = %+v, want id %s hash %s", list, ds.ID, ds.Hash)
	}
	if list[0].Summary == nil || list[0].Summary.Tuples == 0 {
		t.Fatal("recovered dataset has no summary")
	}

	// The pre-restart job id still answers, marked recovered.
	var rec JobView
	if code, body := doJSON(t, "GET", ts2.URL+"/v1/jobs/"+v.ID, nil, &rec); code != http.StatusOK {
		t.Fatalf("get recovered job: %d %s", code, body)
	}
	if rec.State != StateDone || !rec.Recovered || rec.Dataset != ds.ID {
		t.Fatalf("recovered job = %+v", rec)
	}

	// Its artifact is served from the durable tier, identical payload.
	var after struct {
		Result any `json:"result"`
	}
	if code, body := doJSON(t, "GET", ts2.URL+"/v1/jobs/"+v.ID+"/result", nil, &after); code != http.StatusOK {
		t.Fatalf("recovered result: %d %s", code, body)
	}
	if !reflect.DeepEqual(before.Result, after.Result) {
		t.Fatal("recovered artifact differs from the pre-restart result")
	}

	// The identical resubmission is a cache hit — no recompute.
	var hit JobView
	if code, body := doJSON(t, "POST", ts2.URL+"/v1/jobs",
		submitRequest{Dataset: ds.ID, Task: "rank-fds"}, &hit); code != http.StatusOK {
		t.Fatalf("resubmit: %d %s", code, body)
	}
	if !hit.CacheHit {
		t.Fatal("post-restart resubmission should be a cache hit")
	}
	if hit.ID == v.ID {
		t.Fatal("new job reused a recovered job id")
	}

	// healthz reports the recovery; the disk tier answered the lookup.
	var h healthz
	if code, body := doJSON(t, "GET", ts2.URL+"/v1/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, body)
	}
	if h.Store == nil || h.Store.RecoveredDatasets != 1 || h.Store.RecoveredJobs < 1 {
		t.Fatalf("healthz store stats = %+v", h.Store)
	}
	if h.Cache.DiskHits < 1 {
		t.Fatalf("cache disk hits = %d, want >= 1", h.Cache.DiskHits)
	}

	// The store metric family is exported.
	scrape := scrapeMetrics(t, ts2.URL)
	for _, want := range []string{
		"structmine_store_recovered_datasets 1",
		"structmine_store_snapshot_writes_total",
		"structmine_store_journal_appends_total",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape is missing %q", want)
		}
	}
}

// TestRegisterFailsWhenStoreCannotWrite pins durability-before-
// residency: when the snapshot cannot be written, registration returns
// 507 store_write_failed and the dataset does not become resident.
func TestRegisterFailsWhenStoreCannotWrite(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	defer st.Close()
	s := New(Config{Workers: 1, Store: st})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	// Sabotage the datasets directory: replace it with a plain file so
	// the atomic-write temp file cannot be created.
	datasets := filepath.Join(dir, "datasets")
	if err := os.RemoveAll(datasets); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(datasets, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	code, body := doJSON(t, "POST", ts.URL+"/v1/datasets?name=db2", db2CSV(t), nil)
	if code != http.StatusInsufficientStorage {
		t.Fatalf("register with broken store: %d %s, want 507", code, body)
	}
	var env apiErrorBody
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("error body is not the envelope: %s", body)
	}
	if env.Error.Code != CodeStoreWrite {
		t.Fatalf("error code = %q, want %q", env.Error.Code, CodeStoreWrite)
	}
	if s.reg.Len() != 0 {
		t.Fatal("failed registration left the dataset resident")
	}

	// Restore the directory; the same registration now succeeds.
	if err := os.Remove(datasets); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(datasets, 0o755); err != nil {
		t.Fatal(err)
	}
	if code, body := doJSON(t, "POST", ts.URL+"/v1/datasets?name=db2", db2CSV(t), nil); code != http.StatusCreated {
		t.Fatalf("register after repair: %d %s", code, body)
	}
}

// TestDeprecatedAliases checks the migration contract: every bare path
// serves the same payload as its /v1 twin but carries the
// "Deprecation: true" header, while /v1 responses do not.
func TestDeprecatedAliases(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	registerDB2(t, ts)

	for _, path := range []string{"/healthz", "/tasks", "/datasets", "/jobs"} {
		old, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		oldBody, _ := io.ReadAll(old.Body)
		old.Body.Close()
		if old.Header.Get("Deprecation") != "true" {
			t.Errorf("GET %s: missing Deprecation header", path)
		}

		neu, err := http.Get(ts.URL + "/v1" + path)
		if err != nil {
			t.Fatal(err)
		}
		newBody, _ := io.ReadAll(neu.Body)
		neu.Body.Close()
		if neu.Header.Get("Deprecation") != "" {
			t.Errorf("GET /v1%s: unexpected Deprecation header", path)
		}
		if old.StatusCode != neu.StatusCode || string(oldBody) != string(newBody) {
			t.Errorf("GET %s and /v1%s disagree: %d vs %d", path, path, old.StatusCode, neu.StatusCode)
		}
	}
}

// TestErrorEnvelope pins the error wire shape on representative paths:
// every error is {"error":{"code":...,"message":...}} with the
// documented machine-readable code.
func TestErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	ds := registerDB2(t, ts)

	cases := []struct {
		method, path string
		body         any
		status       int
		code         string
	}{
		{"GET", "/v1/datasets/nope", nil, 404, CodeDatasetNotFound},
		{"GET", "/v1/jobs/nope", nil, 404, CodeJobNotFound},
		{"GET", "/v1/jobs/nope/result", nil, 404, CodeJobNotFound},
		{"POST", "/v1/jobs/nope/cancel", nil, 404, CodeJobNotFound},
		{"POST", "/v1/jobs", submitRequest{Dataset: ds.ID, Task: "no-such-task"}, 400, CodeUnknownTask},
		{"POST", "/v1/jobs", submitRequest{Dataset: ds.ID, Task: "joins"}, 400, CodeTaskNotRunnable},
		{"POST", "/v1/jobs", submitRequest{Dataset: "nope", Task: "describe"}, 404, CodeDatasetNotFound},
		{"POST", "/v1/jobs", submitRequest{Task: "describe"}, 400, CodeBadRequest},
		{"POST", "/v1/datasets", registerRequest{Path: "x.csv"}, 403, CodePathForbidden},
	}
	for _, tc := range cases {
		code, body := doJSON(t, tc.method, ts.URL+tc.path, tc.body, nil)
		if code != tc.status {
			t.Errorf("%s %s: status %d, want %d (%s)", tc.method, tc.path, code, tc.status, body)
			continue
		}
		var env apiErrorBody
		if err := json.Unmarshal([]byte(body), &env); err != nil || env.Error.Code == "" {
			t.Errorf("%s %s: body is not the error envelope: %s", tc.method, tc.path, body)
			continue
		}
		if env.Error.Code != tc.code {
			t.Errorf("%s %s: code %q, want %q", tc.method, tc.path, env.Error.Code, tc.code)
		}
		if env.Error.Message == "" {
			t.Errorf("%s %s: empty error message", tc.method, tc.path)
		}
	}
}
