package server

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"structmine/internal/colstore"
	"structmine/internal/obs"
	"structmine/internal/relation"
	"structmine/internal/store"
	"structmine/internal/task"
)

// Dataset appends. An append extends a registered dataset with more CSV
// rows (same header shape) without re-uploading or re-parsing what is
// already there. The dataset keeps its stable short id; its content
// hash advances deterministically (appendHash) and its epoch increments,
// so every derived artifact — cache entries, persisted mine-state — is
// keyed to exactly one point in the lineage and can never leak across an
// append boundary.
//
// Durability follows the store's intent-record protocol: the append
// record (carrying the body and the identity transition) is written
// BEFORE any dataset state changes and retired only after the new
// snapshot or paged file is published and the old one removed. A crash
// anywhere in between is replayed on restart — by store.Open for the
// snapshot tier, and by Registry.RecoverAppends for the paged tier —
// so appended rows are never lost and never applied twice.

// appendHash advances a dataset's content hash across an append:
// SHA-256 over the previous hash's hex bytes followed by the appended
// body. It is deterministic in (old contents, body), so replaying the
// same append after a crash converges on the same identity.
func appendHash(oldHash string, body []byte) string {
	h := sha256.New()
	h.Write([]byte(oldHash))
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil))
}

// AppendCSV appends CSV rows (a header line plus data rows, validated
// under the same shape checks as registration) to the dataset with the
// given id or hash, returning the post-append dataset. Appends are
// serialized: each is a multi-step identity transition and interleaving
// two would fork the lineage.
func (g *Registry) AppendCSV(id string, body []byte) (*Dataset, error) {
	g.appendMu.Lock()
	defer g.appendMu.Unlock()

	ds, ok := g.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, id)
	}
	newHash := appendHash(ds.Hash, body)
	epoch := ds.Epoch + 1
	newBytes := ds.Bytes + int64(len(body))

	var next *Dataset
	var rows int
	var err error
	if ds.rel != nil {
		next, rows, err = g.appendResident(ds, body, newHash, epoch, newBytes)
	} else {
		next, rows, err = g.appendPaged(ds, body, newHash, epoch, newBytes)
	}
	if err != nil {
		return nil, err
	}
	obs.AppendRows.Add(uint64(rows))
	obs.AppendEpochs.Inc()
	return next, nil
}

// appendResident applies an append to an in-memory dataset: validate the
// body against the resident relation, persist the transition (intent
// record, new snapshot, old snapshot removal), then swap the registry
// entry. The relation extension shares the existing rows — an append
// costs the appended rows, not a copy of the dataset.
func (g *Registry) appendResident(ds *Dataset, body []byte, newHash string, epoch int, newBytes int64) (*Dataset, int, error) {
	// Validate before any durable state moves: a malformed body must be
	// a clean 4xx with the dataset untouched.
	rel2, rows, err := relation.AppendCSV(ds.rel, body, g.lim)
	if err != nil {
		return nil, 0, err
	}
	if g.budget > 0 && newBytes > g.budget && !g.pagedTier() {
		return nil, 0, fmt.Errorf("%w (%d > %d bytes)", ErrAppendOverBudget, newBytes, g.budget)
	}
	if g.st != nil {
		rec := store.AppendRecord{
			ID: ds.ID, Name: ds.Name, Source: ds.Source,
			OldHash: ds.Hash, NewHash: newHash, Epoch: epoch,
			Bytes: newBytes, Rows: body,
		}
		if err := g.st.PutAppendRecord(rec); err != nil {
			return nil, 0, fmt.Errorf("%w: %v", ErrStoreWrite, err)
		}
		meta := store.DatasetMeta{
			Hash: newHash, Name: ds.Name, Source: ds.Source,
			Bytes: newBytes, ID: ds.ID, Epoch: epoch,
		}
		if err := g.st.SaveDataset(meta, rel2); err != nil {
			// The append did not happen: withdraw the intent so recovery
			// does not replay it.
			_ = g.st.RetireAppendRecord(newHash)
			return nil, 0, fmt.Errorf("%w: %v", ErrStoreWrite, err)
		}
		_ = g.st.RemoveDataset(ds.Hash)
		_ = g.st.RetireAppendRecord(newHash)
	}
	next := &Dataset{
		ID: ds.ID, Name: ds.Name, Hash: newHash, Epoch: epoch,
		Source: ds.Source, Bytes: newBytes, Storage: StorageResident,
		Summary: task.Describe(rel2), rel: rel2, use: ds.use,
	}
	g.mu.Lock()
	delete(g.byHash, ds.Hash)
	g.byHash[newHash] = next
	g.alias[ds.ID] = newHash
	g.touch(next)
	g.evictLocked()
	out := g.byHash[newHash] // eviction may have paged the new entry out
	g.mu.Unlock()
	return out, rows, nil
}

// appendPaged applies an append to a colstore-backed dataset: the new
// rows land in a new paged file as additional stripes (full stripes of
// the old file are copied verbatim), the registry entry swaps to it, and
// the old file is removed. The intent record is written first so a crash
// at any point is replayed by RecoverAppends.
func (g *Registry) appendPaged(ds *Dataset, body []byte, newHash string, epoch int, newBytes int64) (*Dataset, int, error) {
	old, err := ds.table()
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrStoreWrite, err)
	}
	dir, err := g.st.ColstoreDir()
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrStoreWrite, err)
	}
	rec := store.AppendRecord{
		ID: ds.ID, Name: ds.Name, Source: ds.Source,
		OldHash: ds.Hash, NewHash: newHash, Epoch: epoch,
		Bytes: newBytes, Rows: body,
	}
	if err := g.st.PutAppendRecord(rec); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrStoreWrite, err)
	}
	meta := store.DatasetMeta{
		Hash: newHash, Name: ds.Name, Source: ds.Source,
		Bytes: newBytes, ID: ds.ID, Epoch: epoch,
	}
	path, err := colstore.Append(dir, meta, old, body, g.lim, g.writeOpts())
	if err != nil {
		_ = g.st.RetireAppendRecord(newHash)
		if errors.Is(err, relation.ErrShapeMismatch) {
			return nil, 0, err // 4xx: body rejected, dataset untouched
		}
		return nil, 0, fmt.Errorf("%w: %v", ErrStoreWrite, err)
	}
	tbl, err := colstore.Open(path)
	if err != nil {
		g.st.Quarantine(path)
		_ = g.st.RetireAppendRecord(newHash)
		return nil, 0, fmt.Errorf("%w: %v", ErrStoreWrite, err)
	}
	summary, err := task.DescribeColumns(tbl)
	if err != nil {
		tbl.Close()
		g.st.Quarantine(path)
		_ = g.st.RetireAppendRecord(newHash)
		return nil, 0, fmt.Errorf("%w: %v", ErrStoreWrite, err)
	}
	rows := tbl.N() - old.N()
	next := &Dataset{
		ID: ds.ID, Name: ds.Name, Hash: newHash, Epoch: epoch,
		Source: ds.Source, Bytes: newBytes, Storage: StoragePaged,
		Summary: summary, colPath: path, use: ds.use,
		handle: &pagedHandle{table: tbl},
	}
	g.mu.Lock()
	delete(g.byHash, ds.Hash)
	g.byHash[newHash] = next
	g.alias[ds.ID] = newHash
	g.touch(next)
	g.mu.Unlock()
	// The new file is published and registered: the old one is garbage.
	ds.handle.mu.Lock()
	if ds.handle.table != nil {
		ds.handle.table.Close()
		ds.handle.table = nil
	}
	ds.handle.mu.Unlock()
	os.Remove(ds.colPath)
	_ = g.st.RetireAppendRecord(newHash)
	return next, rows, nil
}

// RecoverAppends replays append intents that store.Open left pending —
// those whose lineage has no snapshot, i.e. paged-tier appends. Call
// after snapshot adoption and BEFORE RecoverColstore, so the directory
// sweep only ever sees the settled side of each lineage. Every outcome
// retires the record: either the new paged file exists (append landed
// before the crash — finish the cleanup half), or the old one does
// (re-apply the body), or neither (the lineage is gone; nothing to do).
func (g *Registry) RecoverAppends() {
	if g.st == nil {
		return
	}
	dir, err := g.st.ColstoreDir()
	if err != nil {
		return
	}
	for _, rec := range g.st.AppendRecords() {
		g.recoverPagedAppend(dir, rec)
	}
}

// recoverPagedAppend settles one pending intent against the colstore
// directory. Idempotent: a crash during recovery re-enters the same
// protocol on the next boot.
func (g *Registry) recoverPagedAppend(dir string, rec store.AppendRecord) {
	oldPath := filepath.Join(dir, rec.OldHash+colstore.Ext)
	newPath := filepath.Join(dir, rec.NewHash+colstore.Ext)
	if tbl, err := colstore.Open(newPath); err == nil {
		// Applied before the crash; finish the cleanup half.
		tbl.Close()
		os.Remove(oldPath)
		_ = g.st.RetireAppendRecord(rec.NewHash)
		return
	}
	old, err := colstore.Open(oldPath)
	if err != nil {
		// Neither side opens: the lineage is gone (or corrupt, in which
		// case the sweep quarantines it). The intent cannot apply.
		_ = g.st.RetireAppendRecord(rec.NewHash)
		return
	}
	oldMeta := old.Meta()
	meta := store.DatasetMeta{
		Hash: rec.NewHash, Name: rec.Name, Source: rec.Source,
		Bytes: rec.Bytes, ID: rec.ID, Epoch: rec.Epoch,
	}
	if meta.Name == "" {
		meta.Name = oldMeta.Name
	}
	if meta.Source == "" {
		meta.Source = oldMeta.Source
	}
	if meta.ID == "" {
		meta.ID = oldMeta.ID
	}
	_, err = colstore.Append(dir, meta, old, rec.Rows, g.lim, g.writeOpts())
	old.Close()
	if err != nil {
		// The body no longer applies (corrupt record, schema drift): keep
		// the pre-append state rather than lose the dataset.
		_ = g.st.RetireAppendRecord(rec.NewHash)
		return
	}
	os.Remove(oldPath)
	_ = g.st.RetireAppendRecord(rec.NewHash)
}
