package server

import (
	"fmt"
	"sync"
	"time"
)

// DefaultTenant is the admission key of requests carrying no X-Tenant
// header. Limits apply to it like any other tenant.
const DefaultTenant = "default"

// Priority orders jobs of the same node: every queued interactive job
// runs before any queued batch job; within a class the queue stays
// FIFO. Once running, the exec scheduler's fair-share applies per job
// regardless of class.
type Priority string

// The two job priorities.
const (
	// PriorityInteractive is the default: latency-sensitive submissions.
	PriorityInteractive Priority = "interactive"
	// PriorityBatch marks bulk work that yields the queue head to
	// interactive jobs.
	PriorityBatch Priority = "batch"
)

// ParsePriority validates a submission's priority field ("" selects
// interactive).
func ParsePriority(s string) (Priority, error) {
	switch Priority(s) {
	case "", PriorityInteractive:
		return PriorityInteractive, nil
	case PriorityBatch:
		return PriorityBatch, nil
	default:
		return "", fmt.Errorf("unknown priority %q (want %q or %q)", s, PriorityInteractive, PriorityBatch)
	}
}

// TenantLimits configures per-tenant admission. Zero values disable the
// corresponding limit, so an unconfigured server admits exactly as
// before.
type TenantLimits struct {
	// Rate is the sustained job-submission rate each tenant may offer,
	// in requests per second (0 = unlimited). Enforced by a per-tenant
	// token bucket.
	Rate float64
	// Burst is the token-bucket depth: how many submissions a tenant may
	// make instantaneously before the rate applies (default max(1,
	// ceil(Rate))).
	Burst int
	// MaxJobs caps how many of a tenant's jobs may be queued or running
	// at once (0 = unlimited). Cache-hit submissions complete without a
	// worker and are exempt.
	MaxJobs int
}

func (l TenantLimits) normalized() TenantLimits {
	if l.Rate > 0 && l.Burst <= 0 {
		l.Burst = int(l.Rate + 0.999)
		if l.Burst < 1 {
			l.Burst = 1
		}
	}
	return l
}

// tenantState is one tenant's live admission record.
type tenantState struct {
	tokens float64   // token bucket fill, ≤ Burst
	last   time.Time // last refill instant
	active int       // queued + running jobs
}

// tenants applies TenantLimits per X-Tenant key. All methods are called
// under the Runner's mutex via explicit locking here (its own mutex, so
// the runner's lock ordering stays trivial).
type tenants struct {
	lim TenantLimits
	mu  sync.Mutex
	m   map[string]*tenantState
	now func() time.Time // injectable clock for tests
}

func newTenants(lim TenantLimits) *tenants {
	return &tenants{lim: lim.normalized(), m: map[string]*tenantState{}, now: time.Now}
}

func (t *tenants) state(key string) *tenantState {
	s, ok := t.m[key]
	if !ok {
		s = &tenantState{tokens: float64(t.lim.Burst), last: t.now()}
		t.m[key] = s
	}
	return s
}

// admitRate consumes one token from the tenant's bucket, or reports how
// long until the next token accrues.
func (t *tenants) admitRate(key string) error {
	if t.lim.Rate <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.state(key)
	now := t.now()
	s.tokens += now.Sub(s.last).Seconds() * t.lim.Rate
	s.last = now
	if s.tokens > float64(t.lim.Burst) {
		s.tokens = float64(t.lim.Burst)
	}
	if s.tokens < 1 {
		wait := time.Duration((1 - s.tokens) / t.lim.Rate * float64(time.Second))
		return retryAfterError{
			err:   fmt.Errorf("%w: tenant %q over %g req/s", ErrRateLimited, key, t.lim.Rate),
			after: wait,
		}
	}
	s.tokens--
	return nil
}

// admitJob reserves a concurrent-job slot for the tenant; release it
// with releaseJob when the job terminates.
func (t *tenants) admitJob(key string) error {
	if t.lim.MaxJobs <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.state(key)
	if s.active >= t.lim.MaxJobs {
		return retryAfterError{
			err:   fmt.Errorf("%w: tenant %q has %d jobs in flight (max %d)", ErrQuotaExceeded, key, s.active, t.lim.MaxJobs),
			after: time.Second,
		}
	}
	s.active++
	return nil
}

// releaseJob returns a tenant's concurrent-job slot.
func (t *tenants) releaseJob(key string) {
	if t.lim.MaxJobs <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.m[key]; ok && s.active > 0 {
		s.active--
	}
}

// active returns the tenant's in-flight job count (tests, metrics).
func (t *tenants) activeJobs(key string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.m[key]; ok {
		return s.active
	}
	return 0
}
