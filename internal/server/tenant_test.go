package server

import (
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"structmine/internal/task"
)

// TestTenantRateLimit pins the token bucket: with one token of burst
// and a negligible refill rate, a tenant's second submission answers
// 429 rate_limited with a Retry-After header, while another tenant's
// bucket is untouched.
func TestTenantRateLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Tenant: TenantLimits{Rate: 0.001, Burst: 1}})
	var ds Dataset
	if code, body := doJSON(t, "POST", ts.URL+"/v1/datasets?name=toy", []byte(contractCSV), &ds); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	submit := func(tenant string) (int, http.Header, string) {
		return doReq(t, "POST", ts.URL+"/v1/jobs",
			map[string]string{"Content-Type": "application/json", "X-Tenant": tenant},
			[]byte(`{"dataset":"`+ds.ID+`","task":"describe"}`))
	}
	if code, _, body := submit("acme"); code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("first submit: %d %s", code, body)
	}
	code, hdr, body := submit("acme")
	if code != http.StatusTooManyRequests || !strings.Contains(body, CodeRateLimited) {
		t.Fatalf("second submit: %d %s, want 429 %s", code, body, CodeRateLimited)
	}
	if secs, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", hdr.Get("Retry-After"))
	}
	// Tenant isolation: a different key has its own full bucket.
	if code, _, body := submit("globex"); code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("other tenant: %d %s, want admission", code, body)
	}
}

// TestTenantQuota pins the concurrent-jobs cap: while a tenant's job
// is queued or running, its next submission answers 429
// quota_exceeded; the slot frees on any terminal state.
func TestTenantQuota(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 16,
		Tenant: TenantLimits{MaxJobs: 1}})
	var ds Dataset
	if code, body := doJSON(t, "POST", ts.URL+"/v1/datasets?name=heavy", heavyCSV(), &ds); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	var job JobView
	code, body := doJSON(t, "POST", ts.URL+"/v1/jobs",
		submitRequest{Dataset: ds.ID, Task: "rank-fds"}, &job)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", code, body)
	}
	code, hdr, raw := doReq(t, "POST", ts.URL+"/v1/jobs",
		map[string]string{"Content-Type": "application/json"},
		[]byte(`{"dataset":"`+ds.ID+`","task":"describe"}`))
	if code != http.StatusTooManyRequests || !strings.Contains(raw, CodeQuotaExceeded) {
		t.Fatalf("over-quota submit: %d %s, want 429 %s", code, raw, CodeQuotaExceeded)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("quota 429 is missing Retry-After")
	}
	// Another tenant has its own quota and is admitted (queued).
	if code, _, raw := doReq(t, "POST", ts.URL+"/v1/jobs",
		map[string]string{"Content-Type": "application/json", "X-Tenant": "globex"},
		[]byte(`{"dataset":"`+ds.ID+`","task":"describe"}`)); code != http.StatusAccepted {
		t.Fatalf("other tenant: %d %s", code, raw)
	}
	// Canceling the held job frees the slot.
	if code, body := doJSON(t, "POST", ts.URL+"/v1/jobs/"+job.ID+"/cancel", nil, nil); code != http.StatusOK {
		t.Fatalf("cancel: %d %s", code, body)
	}
	waitJob(t, ts, job.ID)
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, _, raw := doReq(t, "POST", ts.URL+"/v1/jobs",
			map[string]string{"Content-Type": "application/json"},
			[]byte(`{"dataset":"`+ds.ID+`","task":"describe"}`))
		if code == http.StatusAccepted || code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after cancel: %d %s", code, raw)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPriorityDequeueOrder pins the queue discipline at the Runner
// level, with no workers racing the assertions: every interactive job
// dequeues before any batch job, FIFO within each class, and a drain
// hands out the backlog before stopping the workers.
func TestPriorityDequeueOrder(t *testing.T) {
	q := &Runner{
		jobs:    map[string]*Job{},
		tenants: newTenants(TenantLimits{}),
		depth:   16,
	}
	q.cond = &sync.Cond{L: &q.mu}
	enqueue := func(id string, p Priority) {
		job := &Job{id: id, priority: p, state: StateQueued}
		if p == PriorityBatch {
			q.low = append(q.low, job)
		} else {
			q.high = append(q.high, job)
		}
	}
	enqueue("b1", PriorityBatch)
	enqueue("i1", PriorityInteractive)
	enqueue("b2", PriorityBatch)
	enqueue("i2", PriorityInteractive)
	q.draining = true // dequeue returns false once both queues empty
	var got []string
	for {
		job, ok := q.dequeue()
		if !ok {
			break
		}
		got = append(got, job.id)
	}
	want := []string{"i1", "i2", "b1", "b2"}
	if len(got) != len(want) {
		t.Fatalf("dequeued %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeued %v, want %v", got, want)
		}
	}
}

// TestPriorityEndToEnd drives the HTTP surface: with a single worker
// pinned by a heavy job, a batch submission queued first still runs
// after a later interactive one.
func TestPriorityEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 16})
	var ds Dataset
	if code, body := doJSON(t, "POST", ts.URL+"/v1/datasets?name=heavy", heavyCSV(), &ds); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	submit := func(priority string, psi float64) JobView {
		var v JobView
		code, body := doJSON(t, "POST", ts.URL+"/v1/jobs",
			submitRequest{Dataset: ds.ID, Task: "rank-fds", Priority: priority,
				Params: task.Params{Psi: task.F(psi)}}, &v)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: %d %s", priority, code, body)
		}
		return v
	}
	pin := submit("", 0.10) // occupies the single worker
	batch := submit("batch", 0.11)
	inter := submit("interactive", 0.12)
	if batch.Priority != PriorityBatch || inter.Priority != PriorityInteractive {
		t.Fatalf("echoed priorities: %s / %s", batch.Priority, inter.Priority)
	}

	// When the interactive job completes, the batch job queued before it
	// must not have finished: the worker took the interactive one first.
	done := waitJob(t, ts, inter.ID)
	if done.State != StateDone {
		t.Fatalf("interactive job: %s (%s)", done.State, done.Error)
	}
	var b JobView
	if code, body := doJSON(t, "GET", ts.URL+"/v1/jobs/"+batch.ID, nil, &b); code != http.StatusOK {
		t.Fatalf("poll batch: %d %s", code, body)
	}
	if b.State == StateDone {
		t.Fatal("batch job finished before the interactive job that should preempt it in the queue")
	}
	// Let everything drain cleanly.
	for _, id := range []string{pin.ID, batch.ID} {
		if v := waitJob(t, ts, id); v.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, v.State, v.Error)
		}
	}
}

// TestSubmitRejectsUnknownPriority pins the 400 for a priority outside
// the two classes.
func TestSubmitRejectsUnknownPriority(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var ds Dataset
	if code, body := doJSON(t, "POST", ts.URL+"/v1/datasets?name=toy", []byte(contractCSV), &ds); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	code, body := doJSON(t, "POST", ts.URL+"/v1/jobs",
		submitRequest{Dataset: ds.ID, Task: "describe", Priority: "urgent"}, nil)
	if code != http.StatusBadRequest || !strings.Contains(body, "unknown priority") {
		t.Fatalf("bad priority: %d %s, want 400", code, body)
	}
}
