package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"structmine/internal/obs"
	"structmine/internal/task"
)

func (s *Server) routes() {
	// Every route is registered through handle, which wraps the handler
	// with a per-route request counter and latency histogram. The route
	// label is the registration pattern, so the cardinality is fixed at
	// the route table size regardless of traffic.
	handle := func(pattern string, h http.HandlerFunc) {
		count := s.reqTotal.With(pattern)
		latency := s.reqSeconds.With(pattern)
		s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			h(w, r)
			count.Inc()
			latency.Observe(time.Since(start).Seconds())
		})
	}
	handle("POST /datasets", s.handleRegisterDataset)
	handle("GET /datasets", s.handleListDatasets)
	handle("GET /datasets/{id}", s.handleGetDataset)
	handle("POST /jobs", s.handleSubmitJob)
	handle("GET /jobs", s.handleListJobs)
	handle("GET /jobs/{id}", s.handleGetJob)
	handle("GET /jobs/{id}/result", s.handleJobResult)
	handle("GET /jobs/{id}/trace", s.handleJobTrace)
	handle("POST /jobs/{id}/cancel", s.handleCancelJob)
	handle("GET /healthz", s.handleHealthz)
	handle("GET /tasks", s.handleListTasks)
	handle("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// registerRequest is the JSON form of POST /datasets. Alternatively the
// body may be the CSV itself (Content-Type text/csv) with the dataset
// name in the ?name= query parameter.
type registerRequest struct {
	// Path registers a CSV readable from the server's filesystem.
	Path string `json:"path,omitempty"`
	// Name labels inline CSV content.
	Name string `json:"name,omitempty"`
	// CSV carries inline content when not uploading raw text/csv.
	CSV string `json:"csv,omitempty"`
}

func (s *Server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	if s.jobs.Draining() {
		writeErr(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxUploadBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > s.cfg.MaxUploadBytes {
		writeErr(w, http.StatusRequestEntityTooLarge, "upload exceeds %d bytes", s.cfg.MaxUploadBytes)
		return
	}

	var ds *Dataset
	var created bool
	ct := r.Header.Get("Content-Type")
	switch {
	case strings.HasPrefix(ct, "application/json"):
		var req registerRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
		switch {
		case req.Path != "":
			var resolved string
			resolved, err = s.resolveDataPath(req.Path)
			if err != nil {
				writeErr(w, http.StatusForbidden, "%v", err)
				return
			}
			ds, created, err = s.reg.RegisterPath(resolved)
		case req.CSV != "":
			ds, created, err = s.reg.RegisterCSV(req.Name, "upload", []byte(req.CSV))
		default:
			writeErr(w, http.StatusBadRequest, "request needs either \"path\" or \"csv\"")
			return
		}
	default: // raw CSV upload
		if len(body) == 0 {
			writeErr(w, http.StatusBadRequest, "empty CSV body")
			return
		}
		ds, created, err = s.reg.RegisterCSV(r.URL.Query().Get("name"), "upload", body)
	}
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrDatasetLimit) {
			code = http.StatusTooManyRequests
		}
		writeErr(w, code, "registering dataset: %v", err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, ds)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.List())
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	ds, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown dataset %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, ds)
}

// submitRequest is the JSON form of POST /jobs.
type submitRequest struct {
	Dataset string      `json:"dataset"`
	Task    string      `json:"task"`
	Params  task.Params `json:"params"`
}

// maxJobBodyBytes bounds POST /jobs request bodies; submissions are
// small JSON documents, far below dataset uploads.
const maxJobBodyBytes = 1 << 20

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBodyBytes)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "job submission exceeds %d bytes", tooBig.Limit)
			return
		}
		writeErr(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Dataset == "" || req.Task == "" {
		writeErr(w, http.StatusBadRequest, "request needs \"dataset\" and \"task\"")
		return
	}
	view, err := s.jobs.Submit(req.Dataset, req.Task, req.Params)
	switch {
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, ErrQueueFull):
		writeErr(w, http.StatusTooManyRequests, "%v", err)
		return
	case err != nil:
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "unknown dataset") {
			code = http.StatusNotFound
		}
		writeErr(w, code, "%v", err)
		return
	}
	if view.State == StateDone { // served from the artifact cache
		writeJSON(w, http.StatusOK, view)
		return
	}
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.List())
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// jobResult wraps a completed artifact with its job metadata.
type jobResult struct {
	Job    JobView `json:"job"`
	Result any     `json:"result"`
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	res, view, ok := s.jobs.Result(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	switch view.State {
	case StateDone:
		writeJSON(w, http.StatusOK, jobResult{Job: view, Result: res})
	case StateFailed, StateCanceled:
		writeJSON(w, http.StatusConflict, jobResult{Job: view})
	default:
		writeErr(w, http.StatusConflict, "job %s is %s; poll GET /jobs/%s until done",
			view.ID, view.State, view.ID)
	}
}

// jobTrace wraps a terminal job's per-stage timings with its metadata.
type jobTrace struct {
	Job   JobView         `json:"job"`
	Trace obs.TraceReport `json:"trace"`
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	rep, view, ok := s.jobs.Trace(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !view.State.Terminal() {
		writeErr(w, http.StatusConflict, "job %s is %s; its trace is available once it finishes",
			view.ID, view.State)
		return
	}
	writeJSON(w, http.StatusOK, jobTrace{Job: view, Trace: rep})
}

// handleMetrics serves the Prometheus text exposition: the process-wide
// engine metrics (AIB, LIMBO, pipeline stages) followed by this server's
// own request, job, cache, and dataset metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.Default.WriteText(w); err != nil {
		return
	}
	_ = s.metrics.WriteText(w)
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// healthz is the liveness and stats payload.
type healthz struct {
	Status   string     `json:"status"`
	Draining bool       `json:"draining"`
	Datasets int        `json:"datasets"`
	Jobs     int        `json:"jobs"`
	Cache    CacheStats `json:"cache"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthz{
		Status:   "ok",
		Draining: s.jobs.Draining(),
		Datasets: s.reg.Len(),
		Jobs:     len(s.jobs.List()),
		Cache:    s.cache.Stats(),
	})
}

func (s *Server) handleListTasks(w http.ResponseWriter, r *http.Request) {
	type taskInfo struct {
		Name     string `json:"name"`
		Synopsis string `json:"synopsis"`
		Runnable bool   `json:"runnable"`
	}
	out := make([]taskInfo, 0, len(task.Specs))
	for _, sp := range task.Specs {
		out = append(out, taskInfo{Name: sp.Name, Synopsis: sp.Synopsis, Runnable: !sp.MultiFile})
	}
	writeJSON(w, http.StatusOK, out)
}
