package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"structmine/internal/cluster"
	"structmine/internal/obs"
	"structmine/internal/task"
)

func (s *Server) routes() {
	// Every route is registered through handle, which wraps the handler
	// with a per-route request counter and latency histogram. The route
	// label is the registration pattern, so the cardinality is fixed at
	// the route table size regardless of traffic.
	handle := func(pattern string, h http.HandlerFunc) {
		count := s.reqTotal.With(pattern)
		latency := s.reqSeconds.With(pattern)
		s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			h(w, r)
			count.Inc()
			latency.Observe(time.Since(start).Seconds())
		})
	}
	// api mounts one endpoint twice: the canonical /v1 route, and the
	// pre-versioning alias at the bare path. The alias serves the exact
	// same payload but answers with "Deprecation: true" and a Sunset
	// date so clients can migrate; each registration keeps its own
	// metrics route label. With DisableDeprecated set the alias instead
	// answers 410 gone — the dry run for the sunset itself. New
	// endpoints are added under /v1 only.
	api := func(method, path string, h http.HandlerFunc) {
		handle(method+" /v1"+path, h)
		handle(method+" "+path, func(w http.ResponseWriter, r *http.Request) {
			if s.cfg.DisableDeprecated {
				writeErrFor(w, ErrGone)
				return
			}
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Sunset", AliasSunset)
			h(w, r)
		})
	}
	api("POST", "/datasets", s.handleRegisterDataset)
	api("GET", "/datasets", s.handleListDatasets)
	api("GET", "/datasets/{id}", s.handleGetDataset)
	// Post-versioning endpoint: /v1 only, no deprecated bare alias.
	handle("POST /v1/datasets/{id}/append", s.handleAppendDataset)
	api("POST", "/jobs", s.handleSubmitJob)
	api("GET", "/jobs", s.handleListJobs)
	api("GET", "/jobs/{id}", s.handleGetJob)
	api("GET", "/jobs/{id}/result", s.handleJobResult)
	api("GET", "/jobs/{id}/trace", s.handleJobTrace)
	api("POST", "/jobs/{id}/cancel", s.handleCancelJob)
	api("GET", "/healthz", s.handleHealthz)
	api("GET", "/tasks", s.handleListTasks)
	api("GET", "/metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// AliasSunset is the Sunset header (RFC 8594) on every deprecated
// bare-path alias: the date after which the aliases may be removed.
const AliasSunset = "Fri, 01 Jan 2027 00:00:00 GMT"

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// registerRequest is the JSON form of POST /v1/datasets. Alternatively
// the body may be the CSV itself (Content-Type text/csv) with the
// dataset name in the ?name= query parameter.
type registerRequest struct {
	// Path registers a CSV readable from the server's filesystem.
	Path string `json:"path,omitempty"`
	// Name labels inline CSV content.
	Name string `json:"name,omitempty"`
	// CSV carries inline content when not uploading raw text/csv.
	CSV string `json:"csv,omitempty"`
}

func (s *Server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	if s.jobs.Draining() {
		writeErrFor(w, ErrDraining)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxUploadBytes+1))
	if err != nil {
		writeAPIErr(w, http.StatusBadRequest, CodeBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > s.cfg.MaxUploadBytes {
		writeAPIErr(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
			"upload exceeds %d bytes", s.cfg.MaxUploadBytes)
		return
	}

	// Decode the upload far enough to know the CSV content bytes. In
	// router mode the content hash is the routing key: the registration
	// is proxied (original body, original Content-Type) to the
	// rendezvous owner before any local state is touched, so the same
	// content registers on the same node no matter which replica the
	// client hit. Path registrations stay node-local: the path names
	// this node's filesystem.
	var ds *Dataset
	var created bool
	var csv []byte
	var regName, regPath string
	ct := r.Header.Get("Content-Type")
	switch {
	case strings.HasPrefix(ct, "application/json"):
		var req registerRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeAPIErr(w, http.StatusBadRequest, CodeBadRequest, "decoding request: %v", err)
			return
		}
		switch {
		case req.Path != "":
			regPath = req.Path
		case req.CSV != "":
			csv, regName = []byte(req.CSV), req.Name
		default:
			writeAPIErr(w, http.StatusBadRequest, CodeBadRequest,
				"request needs either \"path\" or \"csv\"")
			return
		}
	default: // raw CSV upload
		if len(body) == 0 {
			writeAPIErr(w, http.StatusBadRequest, CodeBadRequest, "empty CSV body")
			return
		}
		csv, regName = body, r.URL.Query().Get("name")
	}
	if csv != nil {
		hash := sha256.Sum256(csv)
		if s.routeDataset(w, r, hex.EncodeToString(hash[:]), body) {
			return
		}
		ds, created, err = s.reg.RegisterCSV(regName, "upload", csv)
	} else {
		resolved, perr := s.resolveDataPath(regPath)
		if perr != nil {
			writeAPIErr(w, http.StatusForbidden, CodePathForbidden, "%v", perr)
			return
		}
		ds, created, err = s.reg.RegisterPath(resolved)
		if err == nil && s.cfg.Router != nil && !s.cfg.Router.OwnsLocally(ds.Hash) {
			s.cfg.Router.NoteOwnerMove()
		}
	}
	if err != nil {
		switch {
		case errors.Is(err, ErrDatasetLimit), errors.Is(err, ErrStoreWrite):
			writeErrFor(w, err)
		default:
			writeAPIErr(w, http.StatusBadRequest, CodeInvalidDataset, "registering dataset: %v", err)
		}
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, ds)
}

// handleAppendDataset serves POST /v1/datasets/{id}/append: the raw CSV
// body (header line plus rows, same shape as the dataset) is appended,
// the dataset's hash advances and its epoch increments, and the
// post-append dataset is returned.
func (s *Server) handleAppendDataset(w http.ResponseWriter, r *http.Request) {
	if s.jobs.Draining() {
		writeErrFor(w, ErrDraining)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxUploadBytes+1))
	if err != nil {
		writeAPIErr(w, http.StatusBadRequest, CodeBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > s.cfg.MaxUploadBytes {
		writeAPIErr(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
			"append exceeds %d bytes", s.cfg.MaxUploadBytes)
		return
	}
	if len(body) == 0 {
		writeAPIErr(w, http.StatusBadRequest, CodeBadRequest, "empty CSV body")
		return
	}
	if s.routeDataset(w, r, r.PathValue("id"), body) {
		return
	}
	ds, err := s.reg.AppendCSV(r.PathValue("id"), body)
	if err != nil {
		writeErrFor(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ds)
}

// listPage is the envelope of the paginated list endpoints: one page
// of items, the corpus total, and the cursor addressing the next page
// (absent on the last page). Pass the cursor back verbatim as ?cursor=
// to continue; cursors are positions in a stable sort order, so they
// survive concurrent mutation without skipping or repeating items.
type listPage struct {
	Items      any    `json:"items"`
	Total      int    `json:"total"`
	NextCursor string `json:"next_cursor,omitempty"`
}

// Pagination bounds for the list endpoints.
const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
)

// pageParams parses ?limit= and ?cursor=. It reports ok=false after
// writing the 400 for a malformed limit.
func pageParams(w http.ResponseWriter, r *http.Request) (limit int, cursor string, ok bool) {
	limit = defaultPageLimit
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeAPIErr(w, http.StatusBadRequest, CodeBadRequest,
				"limit must be a positive integer, got %q", raw)
			return 0, "", false
		}
		limit = min(n, maxPageLimit)
	}
	return limit, r.URL.Query().Get("cursor"), true
}

// datasetItem is one dataset list entry: the dataset plus, in router
// mode, the id of the node the rendezvous table names as its owner.
type datasetItem struct {
	*Dataset
	Node string `json:"node,omitempty"`
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	limit, cursor, ok := pageParams(w, r)
	if !ok {
		return
	}
	page, next, total := s.reg.Page(cursor, limit)
	items := make([]datasetItem, 0, len(page))
	for _, ds := range page {
		items = append(items, datasetItem{Dataset: ds, Node: s.ownerOf(ds.Hash)})
	}
	writeJSON(w, http.StatusOK, listPage{Items: items, Total: total, NextCursor: next})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	if s.routeDataset(w, r, r.PathValue("id"), nil) {
		return
	}
	ds, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeAPIErr(w, http.StatusNotFound, CodeDatasetNotFound,
			"unknown dataset %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, ds)
}

// submitRequest is the JSON form of POST /v1/jobs.
type submitRequest struct {
	Dataset string      `json:"dataset"`
	Task    string      `json:"task"`
	Params  task.Params `json:"params"`
	// Priority selects the queue class: "interactive" (the default) or
	// "batch"; every queued interactive job runs before any batch job.
	Priority string `json:"priority,omitempty"`
}

// maxJobBodyBytes bounds POST /v1/jobs request bodies; submissions are
// small JSON documents, far below dataset uploads.
const maxJobBodyBytes = 1 << 20

// tenantOf extracts the request's admission key from the X-Tenant
// header (DefaultTenant when absent).
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return DefaultTenant
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxJobBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeAPIErr(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				"job submission exceeds %d bytes", tooBig.Limit)
			return
		}
		writeAPIErr(w, http.StatusBadRequest, CodeBadRequest, "reading body: %v", err)
		return
	}
	var req submitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeAPIErr(w, http.StatusBadRequest, CodeBadRequest, "decoding request: %v", err)
		return
	}
	if req.Dataset == "" || req.Task == "" {
		writeAPIErr(w, http.StatusBadRequest, CodeBadRequest,
			"request needs \"dataset\" and \"task\"")
		return
	}
	priority, err := ParsePriority(req.Priority)
	if err != nil {
		writeAPIErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	// In router mode the job runs where its dataset lives: the
	// submission is proxied to the rendezvous owner, and the returned
	// job id is remembered so later polls go straight there.
	if rt := s.cfg.Router; rt != nil && !cluster.Hopped(r) {
		if _, ok := s.reg.Get(req.Dataset); !ok {
			if owner := rt.Owner(req.Dataset); owner.ID != rt.Self().ID {
				if !rt.Prober().Healthy(owner.ID) {
					writeErrFor(w, cluster.ErrPeerUnavailable)
					return
				}
				respBody, status, handled := rt.Forward(w, r, owner, body)
				if !handled {
					writeErrFor(w, cluster.ErrPeerUnavailable)
					return
				}
				s.rememberSubmittedJob(owner.ID, status, respBody)
				return
			}
		} else if !rt.OwnsLocally(req.Dataset) {
			rt.NoteOwnerMove()
		}
	}
	view, err := s.jobs.SubmitAs(tenantOf(r), priority, req.Dataset, req.Task, req.Params)
	if err != nil {
		writeErrFor(w, err)
		return
	}
	if view.State == StateDone { // served from the artifact cache
		writeJSON(w, http.StatusOK, view)
		return
	}
	writeJSON(w, http.StatusAccepted, view)
}

// jobItem is one job list entry: the job plus, in router mode, the id
// of this node — job records are node-local, so the listing node is
// the owning node.
type jobItem struct {
	JobView
	Node string `json:"node,omitempty"`
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	limit, cursor, ok := pageParams(w, r)
	if !ok {
		return
	}
	page, next, total := s.jobs.Page(cursor, limit)
	items := make([]jobItem, 0, len(page))
	for _, v := range page {
		items = append(items, jobItem{JobView: v, Node: s.nodeID()})
	}
	writeJSON(w, http.StatusOK, listPage{Items: items, Total: total, NextCursor: next})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	if s.routeJob(w, r, r.PathValue("id")) {
		return
	}
	view, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeAPIErr(w, http.StatusNotFound, CodeJobNotFound,
			"unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// jobResult wraps a completed artifact with its job metadata.
type jobResult struct {
	Job    JobView `json:"job"`
	Result any     `json:"result"`
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	if s.routeJob(w, r, r.PathValue("id")) {
		return
	}
	res, view, ok := s.jobs.Result(r.PathValue("id"))
	if !ok {
		writeAPIErr(w, http.StatusNotFound, CodeJobNotFound,
			"unknown job %q", r.PathValue("id"))
		return
	}
	switch view.State {
	case StateDone:
		writeJSON(w, http.StatusOK, jobResult{Job: view, Result: res})
	case StateFailed, StateCanceled:
		writeJSON(w, http.StatusConflict, jobResult{Job: view})
	default:
		writeAPIErr(w, http.StatusConflict, CodeJobRunning,
			"job %s is %s; poll GET /v1/jobs/%s until done", view.ID, view.State, view.ID)
	}
}

// jobTrace wraps a terminal job's per-stage timings with its metadata.
type jobTrace struct {
	Job   JobView         `json:"job"`
	Trace obs.TraceReport `json:"trace"`
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	if s.routeJob(w, r, r.PathValue("id")) {
		return
	}
	rep, view, ok := s.jobs.Trace(r.PathValue("id"))
	if !ok {
		writeAPIErr(w, http.StatusNotFound, CodeJobNotFound,
			"unknown job %q", r.PathValue("id"))
		return
	}
	if !view.State.Terminal() {
		writeAPIErr(w, http.StatusConflict, CodeJobRunning,
			"job %s is %s; its trace is available once it finishes", view.ID, view.State)
		return
	}
	writeJSON(w, http.StatusOK, jobTrace{Job: view, Trace: rep})
}

// handleMetrics serves the Prometheus text exposition: the process-wide
// engine metrics (AIB, LIMBO, pipeline stages) followed by this server's
// own request, job, cache, dataset, and durable-store metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.Default.WriteText(w); err != nil {
		return
	}
	_ = s.metrics.WriteText(w)
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	if s.routeJob(w, r, r.PathValue("id")) {
		return
	}
	view, ok := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		writeAPIErr(w, http.StatusNotFound, CodeJobNotFound,
			"unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// healthz is the liveness and stats payload. It is always node-local:
// even in router mode it reports the node that answered, never a peer
// — the prober depends on that, and so does any operator reading one
// replica's health.
type healthz struct {
	Status   string        `json:"status"`
	Draining bool          `json:"draining"`
	Datasets int           `json:"datasets"`
	Jobs     int           `json:"jobs"`
	Cache    CacheStats    `json:"cache"`
	Store    *storeStats   `json:"store,omitempty"`
	Node     string        `json:"node,omitempty"`
	Cluster  *clusterStats `json:"cluster,omitempty"`
}

// clusterStats is the healthz summary of the node's cluster view
// (present only in router mode).
type clusterStats struct {
	Peers        int `json:"peers"`
	HealthyPeers int `json:"healthy_peers"`
}

// storeStats is the healthz summary of the durable store (present only
// when the server runs with persistence).
type storeStats struct {
	RecoveredDatasets int `json:"recovered_datasets"`
	RecoveredJobs     int `json:"recovered_jobs"`
	RecoveredArts     int `json:"recovered_artifacts"`
	DroppedJobRecords int `json:"dropped_job_records"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := healthz{
		Status:   "ok",
		Draining: s.jobs.Draining(),
		Datasets: s.reg.Len(),
		Jobs:     len(s.jobs.List()),
		Cache:    s.cache.Stats(),
	}
	if st := s.cfg.Store; st != nil {
		t := st.Stats()
		h.Store = &storeStats{
			RecoveredDatasets: t.RecoveredDatasets,
			RecoveredJobs:     t.RecoveredJobs,
			RecoveredArts:     t.RecoveredArtifacts,
			DroppedJobRecords: t.DroppedJobRecords,
		}
	}
	if rt := s.cfg.Router; rt != nil {
		h.Node = rt.Self().ID
		h.Cluster = &clusterStats{
			Peers:        rt.Table().Len(),
			HealthyPeers: rt.Prober().HealthyCount(),
		}
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleListTasks(w http.ResponseWriter, r *http.Request) {
	type taskInfo struct {
		Name     string `json:"name"`
		Synopsis string `json:"synopsis"`
		Runnable bool   `json:"runnable"`
		// Paged marks tasks that can also run over "storage":"paged"
		// (colstore-backed) datasets.
		Paged bool `json:"paged"`
	}
	out := make([]taskInfo, 0, len(task.Specs))
	for _, sp := range task.Specs {
		out = append(out, taskInfo{Name: sp.Name, Synopsis: sp.Synopsis, Runnable: !sp.MultiFile, Paged: sp.Paged})
	}
	writeJSON(w, http.StatusOK, out)
}
