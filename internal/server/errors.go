package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"structmine/internal/relation"
)

// Typed submission and registration errors. Handlers map them to HTTP
// statuses and machine-readable envelope codes with errors.Is, so new
// call sites cannot drift from the wire contract by matching message
// substrings.
var (
	// ErrUnknownDataset reports a dataset id/hash that is not registered.
	ErrUnknownDataset = errors.New("server: unknown dataset")
	// ErrUnknownJob reports a job id that is not retained.
	ErrUnknownJob = errors.New("server: unknown job")
	// ErrUnknownTask reports a task name outside the catalogue.
	ErrUnknownTask = errors.New("server: unknown task")
	// ErrTaskNotRunnable reports a catalogued task that cannot run as a
	// server job (multi-file tasks).
	ErrTaskNotRunnable = errors.New("server: task cannot run as a job")
	// ErrStoreWrite reports that durable persistence of new state failed;
	// the mutation is rolled back rather than left memory-only.
	ErrStoreWrite = errors.New("server: durable store write failed")
)

// Error envelope codes — the machine-readable half of every error
// response. These are API contract: clients switch on them, so existing
// codes must never change meaning.
const (
	CodeBadRequest      = "bad_request"
	CodeInvalidDataset  = "invalid_dataset"
	CodeDatasetNotFound = "dataset_not_found"
	CodeDatasetLimit    = "dataset_limit"
	CodeJobNotFound     = "job_not_found"
	CodeJobRunning      = "job_running"
	CodeJobNotDone      = "job_not_done"
	CodeUnknownTask     = "unknown_task"
	CodeTaskNotRunnable = "task_not_runnable"
	CodeQueueFull       = "queue_full"
	CodeBodyTooLarge    = "body_too_large"
	CodeDraining        = "draining"
	CodePathForbidden   = "path_forbidden"
	CodeStoreWrite      = "store_write_failed"
	CodeShapeMismatch   = "shape_mismatch"
	CodeOverBudget      = "over_budget"
)

// apiError is the wire shape of one error.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// apiErrorBody is the envelope: {"error":{"code":...,"message":...}}.
type apiErrorBody struct {
	Error apiError `json:"error"`
}

// writeAPIErr renders the error envelope.
func writeAPIErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(apiErrorBody{Error: apiError{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// errStatus maps a typed error to its HTTP status and envelope code.
// Unrecognized errors fall back to 400 bad_request (every 5xx condition
// has a sentinel).
func errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrUnknownDataset):
		return http.StatusNotFound, CodeDatasetNotFound
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound, CodeJobNotFound
	case errors.Is(err, ErrUnknownTask):
		return http.StatusBadRequest, CodeUnknownTask
	case errors.Is(err, ErrTaskNotRunnable):
		return http.StatusBadRequest, CodeTaskNotRunnable
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, CodeQueueFull
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, CodeDraining
	case errors.Is(err, ErrDatasetLimit):
		return http.StatusTooManyRequests, CodeDatasetLimit
	case errors.Is(err, ErrStoreWrite):
		return http.StatusInsufficientStorage, CodeStoreWrite
	case errors.Is(err, ErrAppendOverBudget):
		return http.StatusInsufficientStorage, CodeOverBudget
	case errors.Is(err, relation.ErrShapeMismatch):
		return http.StatusBadRequest, CodeShapeMismatch
	case errors.Is(err, ErrPathRegistrationDisabled):
		return http.StatusForbidden, CodePathForbidden
	default:
		return http.StatusBadRequest, CodeBadRequest
	}
}

// writeErrFor renders the envelope for a typed error.
func writeErrFor(w http.ResponseWriter, err error) {
	status, code := errStatus(err)
	writeAPIErr(w, status, code, "%v", err)
}
