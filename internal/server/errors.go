package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"structmine/internal/cluster"
	"structmine/internal/relation"
)

// Typed submission and registration errors. Handlers map them to HTTP
// statuses and machine-readable envelope codes with errors.Is, so new
// call sites cannot drift from the wire contract by matching message
// substrings.
var (
	// ErrUnknownDataset reports a dataset id/hash that is not registered.
	ErrUnknownDataset = errors.New("server: unknown dataset")
	// ErrUnknownJob reports a job id that is not retained.
	ErrUnknownJob = errors.New("server: unknown job")
	// ErrUnknownTask reports a task name outside the catalogue.
	ErrUnknownTask = errors.New("server: unknown task")
	// ErrTaskNotRunnable reports a catalogued task that cannot run as a
	// server job (multi-file tasks).
	ErrTaskNotRunnable = errors.New("server: task cannot run as a job")
	// ErrStoreWrite reports that durable persistence of new state failed;
	// the mutation is rolled back rather than left memory-only.
	ErrStoreWrite = errors.New("server: durable store write failed")
	// ErrRateLimited reports a tenant that exhausted its token bucket.
	ErrRateLimited = errors.New("server: tenant rate limit exceeded")
	// ErrQuotaExceeded reports a tenant at its concurrent-jobs quota.
	ErrQuotaExceeded = errors.New("server: tenant concurrent-jobs quota exceeded")
	// ErrGone reports a request for a sunset (deprecated, now disabled)
	// route alias.
	ErrGone = errors.New("server: deprecated alias disabled; use the /v1 route")
)

// retryAfterError wraps a 429 sentinel with the seconds a client should
// wait before retrying; writeErrFor surfaces it as a Retry-After header.
type retryAfterError struct {
	err   error
	after time.Duration
}

func (e retryAfterError) Error() string { return e.err.Error() }
func (e retryAfterError) Unwrap() error { return e.err }

// retrySeconds renders a wait as whole Retry-After seconds, at least 1.
func retrySeconds(d time.Duration) string {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return strconv.Itoa(s)
}

// Error envelope codes — the machine-readable half of every error
// response. These are API contract: clients switch on them, so existing
// codes must never change meaning.
const (
	CodeBadRequest      = "bad_request"
	CodeInvalidDataset  = "invalid_dataset"
	CodeDatasetNotFound = "dataset_not_found"
	CodeDatasetLimit    = "dataset_limit"
	CodeJobNotFound     = "job_not_found"
	CodeJobRunning      = "job_running"
	CodeJobNotDone      = "job_not_done"
	CodeUnknownTask     = "unknown_task"
	CodeTaskNotRunnable = "task_not_runnable"
	CodeQueueFull       = "queue_full"
	CodeBodyTooLarge    = "body_too_large"
	CodeDraining        = "draining"
	CodePathForbidden   = "path_forbidden"
	CodeStoreWrite      = "store_write_failed"
	CodeShapeMismatch   = "shape_mismatch"
	CodeOverBudget      = "over_budget"
	CodeRateLimited     = "rate_limited"
	CodeQuotaExceeded   = "quota_exceeded"
	CodeGone            = "gone"
	CodePeerUnavailable = "peer_unavailable"
)

// apiError is the wire shape of one error.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// apiErrorBody is the envelope: {"error":{"code":...,"message":...}}.
type apiErrorBody struct {
	Error apiError `json:"error"`
}

// writeAPIErr renders the error envelope.
func writeAPIErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(apiErrorBody{Error: apiError{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// errStatus maps a typed error to its HTTP status and envelope code.
// Unrecognized errors fall back to 400 bad_request (every 5xx condition
// has a sentinel).
func errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrUnknownDataset):
		return http.StatusNotFound, CodeDatasetNotFound
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound, CodeJobNotFound
	case errors.Is(err, ErrUnknownTask):
		return http.StatusBadRequest, CodeUnknownTask
	case errors.Is(err, ErrTaskNotRunnable):
		return http.StatusBadRequest, CodeTaskNotRunnable
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, CodeQueueFull
	case errors.Is(err, ErrRateLimited):
		return http.StatusTooManyRequests, CodeRateLimited
	case errors.Is(err, ErrQuotaExceeded):
		return http.StatusTooManyRequests, CodeQuotaExceeded
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, CodeDraining
	case errors.Is(err, cluster.ErrPeerUnavailable):
		return http.StatusServiceUnavailable, CodePeerUnavailable
	case errors.Is(err, ErrGone):
		return http.StatusGone, CodeGone
	case errors.Is(err, ErrDatasetLimit):
		return http.StatusTooManyRequests, CodeDatasetLimit
	case errors.Is(err, ErrStoreWrite):
		return http.StatusInsufficientStorage, CodeStoreWrite
	case errors.Is(err, ErrAppendOverBudget):
		return http.StatusInsufficientStorage, CodeOverBudget
	case errors.Is(err, relation.ErrShapeMismatch):
		return http.StatusBadRequest, CodeShapeMismatch
	case errors.Is(err, ErrPathRegistrationDisabled):
		return http.StatusForbidden, CodePathForbidden
	default:
		return http.StatusBadRequest, CodeBadRequest
	}
}

// writeErrFor renders the envelope for a typed error. Every throttled
// response (any 429: queue-full, tenant rate limit, tenant quota, or
// the dataset cap) carries a Retry-After header — a rate-limit error
// knows exactly how long until the next token, everything else advises
// one second.
func writeErrFor(w http.ResponseWriter, err error) {
	status, code := errStatus(err)
	if status == http.StatusTooManyRequests {
		after := time.Second
		var ra retryAfterError
		if errors.As(err, &ra) {
			after = ra.after
		}
		w.Header().Set("Retry-After", retrySeconds(after))
	}
	writeAPIErr(w, status, code, "%v", err)
}
