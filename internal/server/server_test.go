package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"structmine/internal/datagen"
	"structmine/internal/relation"
	"structmine/internal/task"
)

func db2CSV(t *testing.T) []byte {
	t.Helper()
	db, err := datagen.NewDB2Sample()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := datagen.InjectExactDuplicates(db.Joined, 2, 7).Dirty.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any, out any) (int, string) {
	t.Helper()
	var rd *bytes.Reader
	if raw, ok := body.([]byte); ok {
		rd = bytes.NewReader(raw)
	} else if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := body.([]byte); ok {
		req.Header.Set("Content-Type", "text/csv")
	} else if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw.String(), err)
		}
	}
	return resp.StatusCode, raw.String()
}

func registerDB2(t *testing.T, ts *httptest.Server) Dataset {
	t.Helper()
	var ds Dataset
	code, body := doJSON(t, "POST", ts.URL+"/datasets?name=db2", db2CSV(t), &ds)
	if code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	return ds
}

func waitJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var v JobView
		code, body := doJSON(t, "GET", ts.URL+"/jobs/"+id, nil, &v)
		if code != http.StatusOK {
			t.Fatalf("get job: %d %s", code, body)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobView{}
}

// TestEndToEndFlow covers the whole lifecycle: register → submit → poll
// → result, then a repeat submission served from the artifact cache.
func TestEndToEndFlow(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	ds := registerDB2(t, ts)
	if ds.Summary == nil || ds.Summary.Tuples == 0 {
		t.Fatal("dataset summary should be resident after registration")
	}

	// Re-registering identical content is idempotent (200, same id).
	var again Dataset
	code, _ := doJSON(t, "POST", ts.URL+"/datasets?name=db2", db2CSV(t), &again)
	if code != http.StatusOK || again.ID != ds.ID {
		t.Fatalf("re-register: code %d id %s, want 200 id %s", code, again.ID, ds.ID)
	}

	submit := func() (JobView, int) {
		var v JobView
		code, body := doJSON(t, "POST", ts.URL+"/jobs",
			submitRequest{Dataset: ds.ID, Task: "rank-fds"}, &v)
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submit: %d %s", code, body)
		}
		return v, code
	}

	first, code := submit()
	if code != http.StatusAccepted || first.CacheHit {
		t.Fatalf("first submission should be 202 and uncached, got %d hit=%t", code, first.CacheHit)
	}
	done := waitJob(t, ts, first.ID)
	if done.State != StateDone {
		t.Fatalf("job state %s (%s), want done", done.State, done.Error)
	}

	var res struct {
		Job    JobView            `json:"job"`
		Result task.RankFDsResult `json:"result"`
	}
	code, body := doJSON(t, "GET", ts.URL+"/jobs/"+first.ID+"/result", nil, &res)
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, body)
	}
	if len(res.Result.Ranked) == 0 {
		t.Fatal("rank-fds over DB2 sample should rank dependencies")
	}

	// Identical repeated query: answered from the cache, no re-mining.
	second, code := submit()
	if code != http.StatusOK || !second.CacheHit || second.State != StateDone {
		t.Fatalf("repeat should be an instant cache hit, got code %d %+v", code, second)
	}
	if hits := s.CacheStats().Hits; hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}

	// Different parameters miss the cache.
	var third JobView
	code, _ = doJSON(t, "POST", ts.URL+"/jobs",
		submitRequest{Dataset: ds.ID, Task: "rank-fds", Params: task.Params{Psi: task.F(0.9)}}, &third)
	if code != http.StatusAccepted || third.CacheHit {
		t.Fatalf("changed psi should miss the cache: %d %+v", code, third)
	}
	waitJob(t, ts, third.ID)
}

func TestErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	ds := registerDB2(t, ts)

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"dataset 404", "GET", "/datasets/nope", nil, http.StatusNotFound},
		{"job 404", "GET", "/jobs/nope", nil, http.StatusNotFound},
		{"result 404", "GET", "/jobs/nope/result", nil, http.StatusNotFound},
		{"cancel 404", "POST", "/jobs/nope/cancel", nil, http.StatusNotFound},
		{"bad register", "POST", "/datasets", map[string]string{}, http.StatusBadRequest},
		{"bad submit", "POST", "/jobs", map[string]string{}, http.StatusBadRequest},
		{"unknown task", "POST", "/jobs", submitRequest{Dataset: ds.ID, Task: "frobnicate"}, http.StatusBadRequest},
		{"joins rejected", "POST", "/jobs", submitRequest{Dataset: ds.ID, Task: "joins"}, http.StatusBadRequest},
		{"unknown dataset", "POST", "/jobs", submitRequest{Dataset: "nope", Task: "describe"}, http.StatusNotFound},
	}
	for _, c := range cases {
		code, body := doJSON(t, c.method, ts.URL+c.path, c.body, nil)
		if code != c.want {
			t.Errorf("%s: %d %s, want %d", c.name, code, body, c.want)
		}
	}

	// Malformed CSV upload is a line-numbered 400.
	code, body := doJSON(t, "POST", ts.URL+"/datasets", []byte("A,B,A\n1,2,3\n"), nil)
	if code != http.StatusBadRequest || !strings.Contains(body, "duplicate attribute") {
		t.Errorf("duplicate-header upload: %d %s", code, body)
	}

	// Result of a still-unfinished job is 409 (submit against a fresh
	// dataset so the artifact cache cannot satisfy it instantly).
	var v JobView
	doJSON(t, "POST", ts.URL+"/jobs", submitRequest{Dataset: ds.ID, Task: "report"}, &v)
	code, _ = doJSON(t, "GET", ts.URL+"/jobs/"+v.ID+"/result", nil, nil)
	if code != http.StatusOK && code != http.StatusConflict {
		t.Errorf("unfinished result: %d", code)
	}
}

// TestConcurrentClients hammers one server with parallel submissions of
// a mixed workload from many clients; run under -race this exercises
// registry, runner and cache synchronization.
func TestConcurrentClients(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 256})
	ds := registerDB2(t, ts)

	tasks := []string{"describe", "dedup", "mine-fds", "values", "describe", "dedup"}
	const clients = 12
	var wg sync.WaitGroup
	ids := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var v JobView
			code, body := doJSON(t, "POST", ts.URL+"/jobs",
				submitRequest{Dataset: ds.ID, Task: tasks[i%len(tasks)]}, &v)
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Errorf("client %d: %d %s", i, code, body)
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		if id == "" {
			continue
		}
		v := waitJob(t, ts, id)
		if v.State != StateDone {
			t.Errorf("job %s: %s (%s)", id, v.State, v.Error)
		}
	}
	stats := s.CacheStats()
	if stats.Hits == 0 {
		t.Error("duplicate submissions should produce cache hits")
	}
	if stats.Entries == 0 {
		t.Error("completed jobs should populate the cache")
	}
}

// TestGracefulShutdownDrain submits jobs, starts a drain, and checks
// that accepted jobs complete while new submissions are rejected.
func TestGracefulShutdownDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	ds := registerDB2(t, ts)

	var accepted []JobView
	for _, name := range []string{"rank-fds", "report", "dedup"} {
		var v JobView
		code, body := doJSON(t, "POST", ts.URL+"/jobs", submitRequest{Dataset: ds.ID, Task: name}, &v)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: %d %s", name, code, body)
		}
		accepted = append(accepted, v)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Every accepted job reached a successful terminal state.
	for _, v := range accepted {
		got, ok := s.jobs.Get(v.ID)
		if !ok || got.State != StateDone {
			t.Errorf("job %s after drain: %+v", v.ID, got)
		}
	}

	// New work is rejected while the HTTP surface stays up.
	code, _ := doJSON(t, "POST", ts.URL+"/jobs", submitRequest{Dataset: ds.ID, Task: "describe"}, nil)
	if code != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: %d, want 503", code)
	}
	code, _ = doJSON(t, "POST", ts.URL+"/datasets?name=x", []byte("A,B\n1,2\n"), nil)
	if code != http.StatusServiceUnavailable {
		t.Errorf("post-drain register: %d, want 503", code)
	}
	var h healthz
	code, _ = doJSON(t, "GET", ts.URL+"/healthz", nil, &h)
	if code != http.StatusOK || !h.Draining {
		t.Errorf("healthz during drain: %d draining=%t", code, h.Draining)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	// A single worker with a backlog of distinct-psi rank-fds jobs keeps
	// the tail of the queue waiting long enough to cancel it.
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 16})
	ds := registerDB2(t, ts)

	var jobs []JobView
	for i := 0; i < 6; i++ {
		var v JobView
		code, body := doJSON(t, "POST", ts.URL+"/jobs",
			submitRequest{Dataset: ds.ID, Task: "rank-fds", Params: task.Params{Psi: task.F(0.2 + float64(i)/50)}}, &v)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, code, body)
		}
		jobs = append(jobs, v)
	}
	last := jobs[len(jobs)-1]
	var canceled JobView
	code, body := doJSON(t, "POST", ts.URL+"/jobs/"+last.ID+"/cancel", nil, &canceled)
	if code != http.StatusOK {
		t.Fatalf("cancel: %d %s", code, body)
	}
	if canceled.State != StateCanceled {
		t.Skipf("worker drained the whole queue before the cancel arrived (state %s)", canceled.State)
	}
	if v := waitJob(t, ts, last.ID); v.State != StateCanceled {
		t.Errorf("canceled job state = %s, want canceled", v.State)
	}
	if v := waitJob(t, ts, jobs[0].ID); v.State != StateDone {
		t.Errorf("first job should still complete, got %s (%s)", v.State, v.Error)
	}
}

func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobTimeout: time.Nanosecond})
	ds := registerDB2(t, ts)
	var v JobView
	code, body := doJSON(t, "POST", ts.URL+"/jobs", submitRequest{Dataset: ds.ID, Task: "rank-fds"}, &v)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	got := waitJob(t, ts, v.ID)
	if got.State != StateFailed || !strings.Contains(got.Error, "timeout") {
		t.Errorf("timed-out job: %+v", got)
	}
}

func TestUploadLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:        1,
		Limits:         relation.Limits{MaxRows: 3, MaxFields: 4},
		MaxUploadBytes: 128,
	})
	code, body := doJSON(t, "POST", ts.URL+"/datasets?name=rows", []byte("A,B\n1,2\n3,4\n5,6\n7,8\n"), nil)
	if code != http.StatusBadRequest || !strings.Contains(body, "row limit") {
		t.Errorf("row limit: %d %s", code, body)
	}
	code, body = doJSON(t, "POST", ts.URL+"/datasets?name=wide", []byte("A,B,C,D,E\n1,2,3,4,5\n"), nil)
	if code != http.StatusBadRequest || !strings.Contains(body, "limit is 4") {
		t.Errorf("field limit: %d %s", code, body)
	}
	big := []byte("A,B\n" + strings.Repeat("x,y\n", 200))
	code, _ = doJSON(t, "POST", ts.URL+"/datasets?name=big", big, nil)
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload: %d, want 413", code)
	}
}

func TestQueueFull(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	db, err := datagen.NewDB2Sample()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Joined.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	ds, _, err := s.Registry().RegisterCSV("db2", "test", buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// Saturate: one running, one queued, then overflow. Distinct psi
	// values dodge the artifact cache.
	sawFull := false
	for i := 0; i < 8 && !sawFull; i++ {
		_, err := s.jobs.Submit(ds.ID, "rank-fds", task.Params{Psi: task.F(0.1 + float64(i)/100)})
		if err != nil {
			if !strings.Contains(err.Error(), "queue is full") {
				t.Fatalf("unexpected submit error: %v", err)
			}
			sawFull = true
		}
	}
	if !sawFull {
		t.Skip("queue never filled (fast machine); covered elsewhere")
	}
}

func TestHealthzAndTasks(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var h healthz
	code, _ := doJSON(t, "GET", ts.URL+"/healthz", nil, &h)
	if code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: %d %+v", code, h)
	}
	var infos []struct {
		Name     string `json:"name"`
		Runnable bool   `json:"runnable"`
	}
	code, _ = doJSON(t, "GET", ts.URL+"/tasks", nil, &infos)
	if code != http.StatusOK {
		t.Fatalf("tasks: %d", code)
	}
	if len(infos) != len(task.Specs) {
		t.Fatalf("tasks lists %d entries, want %d", len(infos), len(task.Specs))
	}
	for _, info := range infos {
		if info.Name == "joins" && info.Runnable {
			t.Error("joins must not be runnable as a job")
		}
	}
}

func TestRegisterByPath(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 1, DataDir: dir})
	path := dir + "/sample.csv"
	if err := writeFile(path, "A,B\n1,2\n3,4\n"); err != nil {
		t.Fatal(err)
	}
	var ds Dataset
	code, body := doJSON(t, "POST", ts.URL+"/datasets",
		registerRequest{Path: path}, &ds)
	if code != http.StatusCreated {
		t.Fatalf("register by path: %d %s", code, body)
	}
	if ds.Name != "sample.csv" || ds.Summary.Tuples != 2 {
		t.Errorf("dataset: %+v", ds)
	}

	// Relative paths are rooted at the data directory.
	var rel Dataset
	code, body = doJSON(t, "POST", ts.URL+"/datasets", registerRequest{Path: "sample.csv"}, &rel)
	if code != http.StatusOK || rel.ID != ds.ID {
		t.Errorf("relative path: %d %s, want 200 with id %s", code, body, ds.ID)
	}

	// EvalSymlinks fails on a missing file → the path never reaches the
	// registry.
	code, _ = doJSON(t, "POST", ts.URL+"/datasets", registerRequest{Path: dir + "/missing.csv"}, nil)
	if code != http.StatusForbidden {
		t.Errorf("missing path: %d, want 403", code)
	}
}

// TestRegisterByPathConfined checks the exfiltration guard: path
// registration is off without -data-dir, and a configured data
// directory cannot be escaped with absolute paths, ../, or symlinks.
func TestRegisterByPathConfined(t *testing.T) {
	outside := t.TempDir()
	secret := outside + "/secret.csv"
	if err := writeFile(secret, "A,B\n1,2\n"); err != nil {
		t.Fatal(err)
	}

	// Default server: no data directory, path registration disabled.
	_, ts := newTestServer(t, Config{Workers: 1})
	code, body := doJSON(t, "POST", ts.URL+"/datasets", registerRequest{Path: secret}, nil)
	if code != http.StatusForbidden || !strings.Contains(body, "disabled") {
		t.Errorf("no data-dir: %d %s, want 403 disabled", code, body)
	}

	dir := t.TempDir()
	if err := os.Symlink(secret, dir+"/link.csv"); err != nil {
		t.Fatal(err)
	}
	_, ts = newTestServer(t, Config{Workers: 1, DataDir: dir})
	for name, path := range map[string]string{
		"absolute escape": secret,
		"dotdot escape":   dir + "/../" + filepath.Base(outside) + "/secret.csv",
		"relative dotdot": "../" + filepath.Base(outside) + "/secret.csv",
		"symlink escape":  dir + "/link.csv",
	} {
		code, body := doJSON(t, "POST", ts.URL+"/datasets", registerRequest{Path: path}, nil)
		if code != http.StatusForbidden {
			t.Errorf("%s (%s): %d %s, want 403", name, path, code, body)
		}
	}
}

// TestBoundedState covers the three retention knobs that keep a
// long-running daemon's memory bounded: the dataset cap, terminal-job
// retention, and LRU artifact-cache eviction.
func TestBoundedState(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxDatasets: 1, MaxJobs: 2, CacheEntries: 2})
	ds := registerDB2(t, ts)

	// Registry at capacity: identical content is still idempotent, new
	// content is refused with 429.
	code, _ := doJSON(t, "POST", ts.URL+"/datasets?name=db2", db2CSV(t), nil)
	if code != http.StatusOK {
		t.Errorf("re-register at cap: %d, want 200", code)
	}
	code, body := doJSON(t, "POST", ts.URL+"/datasets?name=other", []byte("A,B\n1,2\n"), nil)
	if code != http.StatusTooManyRequests || !strings.Contains(body, "dataset limit") {
		t.Errorf("register beyond cap: %d %s, want 429", code, body)
	}

	// Run more jobs than MaxJobs retains; each must finish before the
	// next submit so every record is terminal and evictable.
	var ids []string
	for _, params := range []float64{0.3, 0.4, 0.5, 0.6} {
		var v JobView
		code, body := doJSON(t, "POST", ts.URL+"/jobs",
			submitRequest{Dataset: ds.ID, Task: "rank-fds", Params: task.Params{Psi: task.F(params)}}, &v)
		if code != http.StatusAccepted {
			t.Fatalf("submit psi=%v: %d %s", params, code, body)
		}
		waitJob(t, ts, v.ID)
		ids = append(ids, v.ID)
	}
	if n := len(s.jobs.List()); n > 2 {
		t.Errorf("retained job records = %d, want ≤ 2", n)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/jobs/"+ids[0], nil, nil); code != http.StatusNotFound {
		t.Errorf("oldest job should be forgotten: %d, want 404", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/jobs/"+ids[len(ids)-1], nil, nil); code != http.StatusOK {
		t.Errorf("newest job should survive retention: %d, want 200", code)
	}

	// Four distinct artifacts through a 2-entry cache: LRU keeps it at 2.
	if stats := s.CacheStats(); stats.Entries > 2 {
		t.Errorf("cache entries = %d, want ≤ 2", stats.Entries)
	}
	// The most recent artifact is still a hit, the first was evicted.
	var v JobView
	doJSON(t, "POST", ts.URL+"/jobs",
		submitRequest{Dataset: ds.ID, Task: "rank-fds", Params: task.Params{Psi: task.F(0.6)}}, &v)
	if !v.CacheHit {
		t.Error("most recent artifact should still be cached")
	}
	doJSON(t, "POST", ts.URL+"/jobs",
		submitRequest{Dataset: ds.ID, Task: "rank-fds", Params: task.Params{Psi: task.F(0.3)}}, &v)
	if v.CacheHit {
		t.Error("oldest artifact should have been evicted")
	}
	waitJob(t, ts, v.ID)
}

func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a: b is now least recent
		t.Fatal("a should be cached")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a was refreshed and should survive")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c is newest and should survive")
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
}

// TestRegistryIdentity checks that dataset identity is the full content
// hash: Get accepts both forms, and a short-id prefix collision extends
// the new alias instead of silently resolving to the other dataset.
func TestRegistryIdentity(t *testing.T) {
	g := NewRegistry(relation.Limits{}, 0)
	ds, created, err := g.RegisterCSV("x", "test", []byte("A,B\n1,2\n"))
	if err != nil || !created {
		t.Fatalf("register: %v created=%t", err, created)
	}
	if len(ds.Hash) != 64 || ds.ID != ds.Hash[:shortIDLen] {
		t.Fatalf("identity: id=%s hash=%s", ds.ID, ds.Hash)
	}
	for _, key := range []string{ds.ID, ds.Hash} {
		if got, ok := g.Get(key); !ok || got != ds {
			t.Errorf("Get(%s) = %v, %t", key, got, ok)
		}
	}

	// Simulate a 48-bit prefix collision: a resident alias with the same
	// 12-char prefix but a different full hash must not be returned for
	// the new content — the new id extends until unambiguous.
	other := ds.Hash[:shortIDLen] + strings.Repeat("0", 64-shortIDLen)
	g.mu.Lock()
	delete(g.byHash, ds.Hash) // forget ds so its content re-registers
	delete(g.alias, ds.ID)
	g.alias[other[:shortIDLen]] = other // the collider now owns the 12-char prefix
	g.byHash[other] = &Dataset{ID: other[:shortIDLen], Hash: other}
	id := g.assignIDLocked(ds.Hash)
	g.mu.Unlock()
	if id == other[:shortIDLen] {
		t.Fatal("colliding prefix must not be reused")
	}
	if !strings.HasPrefix(ds.Hash, id) || len(id) <= shortIDLen {
		t.Errorf("extended id %s should be a longer prefix of %s", id, ds.Hash)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
