package server

import (
	"container/list"
	"encoding/json"
	"fmt"
	"sync"

	"structmine/internal/store"
	"structmine/internal/task"
)

// Cache is the content-addressed artifact cache: completed task results
// keyed on (dataset content hash, task, normalized parameters). Because
// datasets are immutable once registered and every task is
// deterministic, entries never go stale — but a long-running daemon
// cannot keep every artifact forever, so the cache evicts
// least-recently-used entries beyond a configured capacity.
//
// With a durable store attached the cache is two-tiered: every Put also
// spills the marshaled artifact to disk, and a memory miss falls back to
// the store before being counted as a miss. Disk hits are promoted back
// into memory as json.RawMessage (handlers re-encode them verbatim), so
// a warm restart answers repeated queries without re-running the miner.
type Cache struct {
	mu     sync.Mutex
	m      map[string]*list.Element
	lru    *list.List // front = most recently used
	max    int        // entry cap (0 = unlimited)
	hits   uint64
	misses uint64
	disk   uint64 // hits served from the durable tier

	st *store.Store // optional durable tier (nil = memory only)
}

type cacheEntry struct {
	key string
	val any
}

// NewCache returns an empty artifact cache holding at most max entries
// (0 = unlimited).
func NewCache(max int) *Cache {
	return &Cache{m: map[string]*list.Element{}, lru: list.New(), max: max}
}

// Key builds the canonical artifact address for one query. The epoch
// disambiguates the states of an appended-to dataset: because the
// content hash already advances on every append the epoch is strictly
// redundant, but keying on it too makes a cross-epoch cache hit
// structurally impossible rather than merely hash-collision-improbable.
// Epoch 0 renders without the suffix so artifacts persisted by earlier
// builds keep their addresses.
func Key(datasetHash string, epoch int, taskName string, p task.Params) string {
	if epoch > 0 {
		return fmt.Sprintf("%s@%d|%s", datasetHash, epoch, p.CacheKey(taskName))
	}
	return datasetHash + "|" + p.CacheKey(taskName)
}

// Get returns the cached artifact, refreshes its recency, and counts
// the lookup as a hit or miss. On a memory miss the durable tier (when
// attached) is consulted; a disk hit is promoted into memory.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	el, ok := c.m[key]
	if ok {
		c.hits++
		c.lru.MoveToFront(el)
		v := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return v, true
	}
	st := c.st
	c.mu.Unlock()

	if st != nil {
		if raw, ok := st.GetArtifact(key); ok {
			c.mu.Lock()
			c.hits++
			c.disk++
			c.putLocked(key, raw)
			c.mu.Unlock()
			return raw, true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Peek returns the artifact without touching the hit/miss counters or
// promoting disk entries — used when serving the result of a recovered
// job record, which is a read of existing state rather than a query.
func (c *Cache) Peek(key string) (any, bool) {
	c.mu.Lock()
	el, ok := c.m[key]
	st := c.st
	c.mu.Unlock()
	if ok {
		return el.Value.(*cacheEntry).val, true
	}
	if st != nil {
		if raw, ok := st.GetArtifact(key); ok {
			return raw, true
		}
	}
	return nil, false
}

// Put stores one completed artifact, evicting the least recently used
// entries if the cache is over capacity. With a durable tier attached
// the artifact is also marshaled and spilled to disk; a spill failure
// only costs durability (the store counts it), never the job result.
func (c *Cache) Put(key string, v any) {
	c.mu.Lock()
	c.putLocked(key, v)
	st := c.st
	c.mu.Unlock()

	if st == nil {
		return
	}
	raw, ok := v.(json.RawMessage)
	if !ok {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		raw = data
	}
	_ = st.PutArtifact(key, raw)
}

func (c *Cache) putLocked(key string, v any) {
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).val = v
		c.lru.MoveToFront(el)
		return
	}
	c.m[key] = c.lru.PushFront(&cacheEntry{key: key, val: v})
	for c.max > 0 && c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// CacheStats is the cache's observable state, served by /healthz and
// asserted by the smoke test.
type CacheStats struct {
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	// DiskHits counts the subset of Hits served from the durable store
	// rather than memory (always 0 without persistence).
	DiskHits uint64 `json:"disk_hits"`
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.m), Hits: c.hits, Misses: c.misses, DiskHits: c.disk}
}
