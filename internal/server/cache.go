package server

import (
	"sync"

	"structmine/internal/task"
)

// Cache is the content-addressed artifact cache: completed task results
// keyed on (dataset content hash, task, normalized parameters). Because
// datasets are immutable once registered and every task is
// deterministic, entries never need invalidation.
type Cache struct {
	mu     sync.RWMutex
	m      map[string]any
	hits   uint64
	misses uint64
}

// NewCache returns an empty artifact cache.
func NewCache() *Cache { return &Cache{m: map[string]any{}} }

// Key builds the canonical artifact address for one query.
func Key(datasetHash, taskName string, p task.Params) string {
	return datasetHash + "|" + p.CacheKey(taskName)
}

// Get returns the cached artifact and counts the lookup as a hit or
// miss.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

// Put stores one completed artifact.
func (c *Cache) Put(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}

// CacheStats is the cache's observable state, served by /healthz and
// asserted by the smoke test.
type CacheStats struct {
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return CacheStats{Entries: len(c.m), Hits: c.hits, Misses: c.misses}
}
