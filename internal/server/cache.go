package server

import (
	"container/list"
	"sync"

	"structmine/internal/task"
)

// Cache is the content-addressed artifact cache: completed task results
// keyed on (dataset content hash, task, normalized parameters). Because
// datasets are immutable once registered and every task is
// deterministic, entries never go stale — but a long-running daemon
// cannot keep every artifact forever, so the cache evicts
// least-recently-used entries beyond a configured capacity.
type Cache struct {
	mu     sync.Mutex
	m      map[string]*list.Element
	lru    *list.List // front = most recently used
	max    int        // entry cap (0 = unlimited)
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key string
	val any
}

// NewCache returns an empty artifact cache holding at most max entries
// (0 = unlimited).
func NewCache(max int) *Cache {
	return &Cache{m: map[string]*list.Element{}, lru: list.New(), max: max}
}

// Key builds the canonical artifact address for one query.
func Key(datasetHash, taskName string, p task.Params) string {
	return datasetHash + "|" + p.CacheKey(taskName)
}

// Get returns the cached artifact, refreshes its recency, and counts
// the lookup as a hit or miss.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores one completed artifact, evicting the least recently used
// entries if the cache is over capacity.
func (c *Cache) Put(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).val = v
		c.lru.MoveToFront(el)
		return
	}
	c.m[key] = c.lru.PushFront(&cacheEntry{key: key, val: v})
	for c.max > 0 && c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// CacheStats is the cache's observable state, served by /healthz and
// asserted by the smoke test.
type CacheStats struct {
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.m), Hits: c.hits, Misses: c.misses}
}
