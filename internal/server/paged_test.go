package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"structmine/internal/store"
)

// pagedBudget is the resident budget the paged tests run under; the big
// CSV is required to exceed it at least 4×.
const pagedBudget = 200_000

// bigCSV builds a ~1MB instance: 2000 tuples (forcing the TANE branch
// and plenty of page stripes), a city→zip dependency to rank, and a
// wide padded column so the source comfortably exceeds 4× the budget.
func bigCSV() []byte {
	var b bytes.Buffer
	b.WriteString("id,city,zip,grade,pad,note\n")
	cities := []string{"athens", "berlin", "cairo", "delhi"}
	pads := []string{
		strings.Repeat("alpha-", 70),
		strings.Repeat("bravo-", 70),
		strings.Repeat("delta-", 70),
	}
	for t := 0; t < 2000; t++ {
		city := cities[t%len(cities)]
		fmt.Fprintf(&b, "%d,%s,z-%s,g%d,%s,ok\n", t, city, city, t%3, pads[t%len(pads)])
	}
	return b.Bytes()
}

// openStoreClosed opens a store via the shared helper and closes it
// when the test ends.
func openStoreClosed(t *testing.T, dir string) *store.Store {
	t.Helper()
	st := openStore(t, dir)
	t.Cleanup(func() { st.Close() })
	return st
}

// metricValue extracts a single metric sample from a Prometheus text
// exposition.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
			if err != nil {
				t.Fatalf("parsing %s sample %q: %v", name, line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

func runToDone(t *testing.T, ts *httptest.Server, dataset, taskName string) (JobView, string) {
	t.Helper()
	var view JobView
	code, body := doJSON(t, "POST", ts.URL+"/v1/jobs",
		submitRequest{Dataset: dataset, Task: taskName}, &view)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit %s: %d %s", taskName, code, body)
	}
	if got := waitJob(t, ts, view.ID); got.State != StateDone {
		t.Fatalf("job %s: state %s (%s)", view.ID, got.State, got.Error)
	}
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+view.ID+"/result", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: %d %s", view.ID, resp.StatusCode, raw.String())
	}
	return view, raw.String()
}

// TestPagedRankFDsMatchesResident is the acceptance end-to-end: a
// dataset more than 4× the resident budget registers as
// "storage":"paged" on a budgeted server, rank-fds runs out of core,
// and the artifact is byte-identical to the one a plain resident server
// mines from the same CSV.
func TestPagedRankFDsMatchesResident(t *testing.T) {
	csv := bigCSV()
	if int64(len(csv)) < 4*pagedBudget {
		t.Fatalf("test CSV is %d bytes, need >= %d (4x budget)", len(csv), 4*pagedBudget)
	}

	_, residentTS := newTestServer(t, Config{})
	st := openStoreClosed(t, t.TempDir())
	_, pagedTS := newTestServer(t, Config{Store: st, ResidentBytes: pagedBudget})

	var resident, paged Dataset
	if code, body := doJSON(t, "POST", residentTS.URL+"/v1/datasets?name=big", csv, &resident); code != http.StatusCreated {
		t.Fatalf("resident register: %d %s", code, body)
	}
	if code, body := doJSON(t, "POST", pagedTS.URL+"/v1/datasets?name=big", csv, &paged); code != http.StatusCreated {
		t.Fatalf("paged register: %d %s", code, body)
	}
	if resident.Storage != StorageResident {
		t.Fatalf("resident server storage %q", resident.Storage)
	}
	if paged.Storage != StoragePaged {
		t.Fatalf("paged server storage %q, want %q", paged.Storage, StoragePaged)
	}
	if paged.Hash != resident.Hash || paged.Bytes != int64(len(csv)) {
		t.Fatalf("paged identity: hash %s bytes %d", paged.Hash, paged.Bytes)
	}
	if paged.Summary == nil || paged.Summary.Tuples != resident.Summary.Tuples ||
		paged.Summary.DistinctValues != resident.Summary.DistinctValues {
		t.Fatalf("paged summary diverges: %+v vs %+v", paged.Summary, resident.Summary)
	}

	_, wantBody := runToDone(t, residentTS, resident.ID, "rank-fds")
	_, gotBody := runToDone(t, pagedTS, paged.ID, "rank-fds")
	if gotBody != wantBody {
		t.Fatalf("paged rank-fds artifact differs from resident:\n got %s\nwant %s", gotBody, wantBody)
	}
	if !strings.Contains(gotBody, `"ranked"`) || !strings.Contains(gotBody, "city") {
		t.Fatalf("suspiciously empty artifact: %s", gotBody)
	}

	// mine-fds and describe also run out of core.
	runToDone(t, pagedTS, paged.ID, "mine-fds")
	runToDone(t, pagedTS, paged.ID, "describe")

	// The colstore metric families are exposed and alive: the open
	// table is gauged and the miner streamed pages.
	_, metrics := doJSON(t, "GET", pagedTS.URL+"/v1/metrics", nil, nil)
	if v := metricValue(t, metrics, "structmine_colstore_open_relations"); v < 1 {
		t.Errorf("open_relations %g, want >= 1", v)
	}
	if v := metricValue(t, metrics, "structmine_colstore_pages_read_total"); v <= 0 {
		t.Errorf("pages_read_total %g, want > 0", v)
	}
	metricValue(t, metrics, "structmine_colstore_page_faults_total")
	metricValue(t, metrics, "structmine_colstore_bytes_mapped")
}

// TestResidentBudgetEviction drives the shared accounting: two small
// datasets that together exceed the budget force the least recently
// used one out to the paged tier, where only paged tasks may run.
func TestResidentBudgetEviction(t *testing.T) {
	st := openStoreClosed(t, t.TempDir())
	_, ts := newTestServer(t, Config{Store: st, ResidentBytes: pagedBudget})

	// Each fits alone (~60% of budget), together they exceed it.
	csv1 := bigCSV()[:pagedBudget*6/10]
	csv1 = csv1[:bytes.LastIndexByte(csv1, '\n')+1]
	csv2 := bytes.Replace(csv1, []byte("athens"), []byte("aspern"), -1)

	var ds1, ds2 Dataset
	if code, body := doJSON(t, "POST", ts.URL+"/v1/datasets?name=one", csv1, &ds1); code != http.StatusCreated {
		t.Fatalf("register one: %d %s", code, body)
	}
	if ds1.Storage != StorageResident {
		t.Fatalf("first dataset storage %q", ds1.Storage)
	}
	if code, body := doJSON(t, "POST", ts.URL+"/v1/datasets?name=two", csv2, &ds2); code != http.StatusCreated {
		t.Fatalf("register two: %d %s", code, body)
	}

	// The older dataset was evicted; the newer one stays resident.
	var got1, got2 Dataset
	doJSON(t, "GET", ts.URL+"/v1/datasets/"+ds1.ID, nil, &got1)
	doJSON(t, "GET", ts.URL+"/v1/datasets/"+ds2.ID, nil, &got2)
	if got1.Storage != StoragePaged || got2.Storage != StorageResident {
		t.Fatalf("after eviction: one=%q two=%q, want paged/resident", got1.Storage, got2.Storage)
	}
	if got1.Summary == nil || got1.Summary.Tuples == 0 || got1.Bytes != int64(len(csv1)) {
		t.Fatalf("evicted dataset lost its summary: %+v", got1)
	}

	// Non-paged tasks are rejected up front on the evicted dataset...
	var apiErr apiErrorBody
	code, body := doJSON(t, "POST", ts.URL+"/v1/jobs",
		submitRequest{Dataset: ds1.ID, Task: "report"}, &apiErr)
	if code != http.StatusBadRequest || apiErr.Error.Code != CodeTaskNotRunnable {
		t.Fatalf("report on paged dataset: %d %s", code, body)
	}
	// ...while paged ones reopen the relation lazily and run.
	runToDone(t, ts, ds1.ID, "describe")
	runToDone(t, ts, ds1.ID, "mine-fds")
}

// TestPagedRecoveryAtBoot reboots a server over the same store: the
// paged dataset (which has no snapshot — its colstore tail is the
// metadata) is re-adopted with a correct summary, and the rank-fds
// artifact recovered from the durable cache answers the repeated query
// as a cache hit.
func TestPagedRecoveryAtBoot(t *testing.T) {
	dir := t.TempDir()
	csv := bigCSV()

	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Store: st1, ResidentBytes: pagedBudget})
	ts1 := httptest.NewServer(s1.Handler())
	var ds Dataset
	if code, body := doJSON(t, "POST", ts1.URL+"/v1/datasets?name=big", csv, &ds); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	if ds.Storage != StoragePaged {
		t.Fatalf("storage %q", ds.Storage)
	}
	_, firstBody := runToDone(t, ts1, ds.ID, "rank-fds")
	ts1.Close()
	st1.Close() // no graceful shutdown: the colstore file must carry everything

	st2 := openStoreClosed(t, dir)
	_, ts2 := newTestServer(t, Config{Store: st2, ResidentBytes: pagedBudget})
	var got Dataset
	if code, body := doJSON(t, "GET", ts2.URL+"/v1/datasets/"+ds.ID, nil, &got); code != http.StatusOK {
		t.Fatalf("dataset after reboot: %d %s", code, body)
	}
	if got.Storage != StoragePaged || got.Name != "big" || got.Bytes != int64(len(csv)) {
		t.Fatalf("recovered dataset: %+v", got)
	}
	if got.Summary == nil || got.Summary.Tuples != 2000 || got.Summary.Attributes != 6 {
		t.Fatalf("recovered summary: %+v", got.Summary)
	}

	var view JobView
	code, body := doJSON(t, "POST", ts2.URL+"/v1/jobs",
		submitRequest{Dataset: ds.ID, Task: "rank-fds"}, &view)
	if code != http.StatusOK || !view.CacheHit {
		t.Fatalf("repeated rank-fds after reboot: %d %s (cache_hit=%t)", code, body, view.CacheHit)
	}
	_ = firstBody
}
