package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"structmine/internal/exec"
	"structmine/internal/obs"
	"structmine/internal/primcache"
	"structmine/internal/relation"
	"structmine/internal/store"
	"structmine/internal/task"
)

// State is a job's lifecycle position: queued → running → done|failed,
// with canceled reachable from queued or running.
type State string

// Job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Submission errors the handlers map to HTTP statuses (see errors.go
// for the full catalogue).
var (
	ErrDraining  = errors.New("server: shutting down, not accepting jobs")
	ErrQueueFull = errors.New("server: job queue is full")
)

// Job is one asynchronous task execution. Mutable fields are guarded by
// the Runner's mutex; JobView snapshots them for handlers.
type Job struct {
	id        string
	datasetID string
	dataset   *Dataset // nil for records recovered from the journal
	task      string
	params    task.Params
	key       string   // artifact-cache key
	hash      string   // dataset content hash pinned at Submit (keys the primitive cache)
	epoch     int      // dataset epoch pinned at Submit (keys the mine-state)
	tenant    string   // admission key (X-Tenant, DefaultTenant otherwise)
	priority  Priority // queue class: interactive jobs dequeue before batch
	quotaHeld bool     // true while the job holds a tenant concurrent-job slot

	// Exactly one of rel/cols is set for executable jobs, pinned at
	// Submit so a dataset evicted to the paged tier mid-queue still runs
	// against the state it was admitted under.
	rel  *relation.Relation
	cols relation.Columns

	state     State
	errMsg    string
	cacheHit  bool
	recovered bool
	result    any
	trace     obs.TraceReport // per-stage timings, filled when the job terminates
	submitted time.Time       // when the job entered the queue (queue-wait metric)

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed on any terminal state
}

// JobView is the JSON shape of a job served by the jobs endpoints.
type JobView struct {
	ID       string      `json:"id"`
	Dataset  string      `json:"dataset"`
	Task     string      `json:"task"`
	Params   task.Params `json:"params"`
	State    State       `json:"state"`
	Error    string      `json:"error,omitempty"`
	CacheHit bool        `json:"cache_hit"`
	Tenant   string      `json:"tenant"`
	Priority Priority    `json:"priority"`
	// Recovered marks a record replayed from the durable journal after a
	// restart rather than executed by this process.
	Recovered bool `json:"recovered,omitempty"`
}

func (j *Job) viewLocked() JobView {
	return JobView{
		ID: j.id, Dataset: j.datasetID, Task: j.task, Params: j.params,
		State: j.state, Error: j.errMsg, CacheHit: j.cacheHit, Recovered: j.recovered,
		Tenant: j.tenant, Priority: j.priority,
	}
}

// jobRecord is the journal line written for every terminal job — enough
// to reconstruct the JobView and re-address the artifact after a
// restart. The shape is persisted state: fields may be added, never
// renamed or repurposed.
type jobRecord struct {
	ID       string      `json:"id"`
	Dataset  string      `json:"dataset"`
	Task     string      `json:"task"`
	Params   task.Params `json:"params"`
	Key      string      `json:"key"`
	State    State       `json:"state"`
	Error    string      `json:"error,omitempty"`
	CacheHit bool        `json:"cache_hit"`
	Tenant   string      `json:"tenant,omitempty"`
	Priority Priority    `json:"priority,omitempty"`
}

// Runner executes jobs on a bounded worker pool and records their
// lifecycle. Artifacts of completed jobs go to the cache; a submission
// whose artifact is already cached completes instantly without touching
// the pool. With a durable store attached, every terminal transition is
// appended to the job journal so a restarted server still answers polls
// for pre-restart job ids.
type Runner struct {
	reg     *Registry
	cache   *Cache
	st      *store.Store     // optional journal (nil = memory only)
	sched   *exec.Scheduler  // divides CPU cores fairly across concurrent jobs
	prim    *primcache.Cache // optional (hash, epoch)-keyed primitive cache for paged jobs
	tenants *tenants         // per-tenant rate limits and concurrent-job quotas
	timeout time.Duration
	retain  int // max job records kept; oldest terminal jobs beyond it are dropped
	depth   int // combined queue bound across both priority classes

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond // signals workers when a job is queued or drain starts
	jobs     map[string]*Job
	order    []string
	seq      int
	draining bool
	// Two FIFO queues, one per priority class. Workers always drain
	// high before low; within a class submission order is preserved.
	high, low []*Job

	workers sync.WaitGroup
}

// NewRunner starts a pool of `workers` goroutines consuming a queue of
// depth `depth`. Each job gets `timeout` of wall clock (0 = unlimited).
// At most `retain` job records are kept (0 = unlimited): once exceeded,
// the oldest terminal jobs are forgotten — their artifacts stay in the
// cache, but polling the job id yields 404. A non-nil st journals every
// terminal job. sched divides CPU cores fairly across the jobs running
// concurrently on the pool (nil = the process-wide exec.Default). A
// non-nil prim serves single-attribute primitives of paged datasets
// across jobs, keyed (hash, epoch, attr).
func NewRunner(reg *Registry, cache *Cache, st *store.Store, sched *exec.Scheduler, prim *primcache.Cache, lim TenantLimits, workers, depth int, timeout time.Duration, retain int) *Runner {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 64
	}
	if sched == nil {
		sched = exec.Default
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Runner{
		reg: reg, cache: cache, st: st, sched: sched, prim: prim,
		tenants: newTenants(lim), timeout: timeout, retain: retain, depth: depth,
		baseCtx: ctx, baseCancel: cancel,
		jobs: map[string]*Job{},
	}
	q.cond = sync.NewCond(&q.mu)
	q.workers.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

// recordLocked marshals the job's journal line. The caller holds q.mu;
// the append itself happens outside the lock (file IO, possibly fsync).
func (j *Job) recordLocked() []byte {
	data, err := json.Marshal(jobRecord{
		ID: j.id, Dataset: j.datasetID, Task: j.task, Params: j.params,
		Key: j.key, State: j.state, Error: j.errMsg, CacheHit: j.cacheHit,
		Tenant: j.tenant, Priority: j.priority,
	})
	if err != nil {
		return nil
	}
	return data
}

// journal appends one terminal job record to the durable journal. A
// failed append costs restart visibility of this record, never the
// response; the store counts the error.
func (q *Runner) journal(record []byte) {
	if q.st == nil || record == nil {
		return
	}
	_ = q.st.AppendJob(record)
}

// Preload replays journal records recovered by the store: terminal jobs
// from previous runs become poll-able records again, and the id
// sequence resumes past the highest recovered id so new jobs never
// collide with journaled ones. Call before serving requests.
func (q *Runner) Preload(records [][]byte) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, rec := range records {
		var jr jobRecord
		if json.Unmarshal(rec, &jr) != nil || jr.ID == "" || !jr.State.Terminal() {
			continue
		}
		if _, ok := q.jobs[jr.ID]; ok {
			continue
		}
		done := make(chan struct{})
		close(done)
		tenant, priority := jr.Tenant, jr.Priority
		if tenant == "" {
			tenant = DefaultTenant
		}
		if priority == "" {
			priority = PriorityInteractive
		}
		job := &Job{
			id: jr.ID, datasetID: jr.Dataset, task: jr.Task, params: jr.Params,
			key: jr.Key, state: jr.State, errMsg: jr.Error, cacheHit: jr.CacheHit,
			tenant: tenant, priority: priority,
			recovered: true,
			trace:     obs.TraceReport{Stages: []obs.StageTiming{}},
			cancel:    func() {}, done: done,
		}
		q.jobs[jr.ID] = job
		q.order = append(q.order, jr.ID)
		var n int
		if _, err := fmt.Sscanf(jr.ID, "job-%d", &n); err == nil && n > q.seq {
			q.seq = n
		}
	}
	q.pruneLocked()
}

// Submit validates and enqueues one job for the default tenant at
// interactive priority. See SubmitAs.
func (q *Runner) Submit(datasetID, taskName string, p task.Params) (JobView, error) {
	return q.SubmitAs(DefaultTenant, PriorityInteractive, datasetID, taskName, p)
}

// SubmitAs validates and enqueues one job on behalf of a tenant. When
// the artifact cache already holds the result of an identical query
// against the same dataset content, the returned job is already done
// with CacheHit set and no worker is consumed. Tenant admission applies
// in order: the token bucket throttles the submission attempt itself,
// then — only for submissions that would occupy a worker — the
// concurrent-jobs quota must have a free slot.
func (q *Runner) SubmitAs(tenant string, priority Priority, datasetID, taskName string, p task.Params) (JobView, error) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	if priority == "" {
		priority = PriorityInteractive
	}
	if err := q.tenants.admitRate(tenant); err != nil {
		return JobView{}, err
	}
	spec, ok := task.Lookup(taskName)
	if !ok {
		return JobView{}, fmt.Errorf("%w %q", ErrUnknownTask, taskName)
	}
	if spec.MultiFile {
		return JobView{}, fmt.Errorf("%w: task %q operates on several files", ErrTaskNotRunnable, taskName)
	}
	ds, ok := q.reg.Get(datasetID)
	if !ok {
		return JobView{}, fmt.Errorf("%w %q", ErrUnknownDataset, datasetID)
	}
	// Pin the execution surface now: a paged dataset must carry a paged
	// task (rejected here, before a worker is consumed), and a resident
	// relation pinned at submit keeps its content even if the registry
	// evicts the dataset to the paged tier while the job waits.
	var rel *relation.Relation
	var cols relation.Columns
	if ds.Paged() {
		if !spec.Paged {
			return JobView{}, fmt.Errorf("%w: task %q needs the resident relation, and dataset %s is paged (out of core)",
				ErrTaskNotRunnable, taskName, ds.ID)
		}
		var err error
		if cols, err = ds.Columns(); err != nil {
			return JobView{}, err
		}
	} else {
		rel = ds.Relation()
	}
	p = p.Normalize(taskName)

	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		return JobView{}, ErrDraining
	}
	q.seq++
	ctx, cancel := context.WithCancel(q.baseCtx)
	job := &Job{
		id: fmt.Sprintf("job-%06d", q.seq), datasetID: ds.ID, dataset: ds,
		rel: rel, cols: cols,
		task: taskName, params: p, hash: ds.Hash, epoch: ds.Epoch,
		tenant: tenant, priority: priority,
		key: Key(ds.Hash, ds.Epoch, taskName, p), state: StateQueued,
		trace:     obs.TraceReport{Stages: []obs.StageTiming{}},
		submitted: time.Now(),
		ctx:       ctx, cancel: cancel, done: make(chan struct{}),
	}
	if v, ok := q.cache.Get(job.key); ok {
		job.state = StateDone
		job.cacheHit = true
		job.result = v
		close(job.done)
		cancel()
		q.jobs[job.id] = job
		q.order = append(q.order, job.id)
		q.pruneLocked()
		view, rec := job.viewLocked(), job.recordLocked()
		q.mu.Unlock()
		q.journal(rec)
		return view, nil
	}
	if len(q.high)+len(q.low) >= q.depth {
		cancel()
		q.mu.Unlock()
		return JobView{}, ErrQueueFull
	}
	// The quota slot is reserved under q.mu (its own lock nests inside),
	// and returned when the job reaches any terminal state.
	if err := q.tenants.admitJob(tenant); err != nil {
		cancel()
		q.mu.Unlock()
		return JobView{}, err
	}
	job.quotaHeld = true
	if priority == PriorityBatch {
		q.low = append(q.low, job)
	} else {
		q.high = append(q.high, job)
	}
	q.cond.Signal()
	q.jobs[job.id] = job
	q.order = append(q.order, job.id)
	q.pruneLocked()
	view := job.viewLocked()
	q.mu.Unlock()
	return view, nil
}

// releaseQuotaLocked returns the job's tenant concurrent-job slot
// exactly once. The caller holds q.mu.
func (q *Runner) releaseQuotaLocked(job *Job) {
	if job.quotaHeld {
		job.quotaHeld = false
		q.tenants.releaseJob(job.tenant)
	}
}

// pruneLocked drops the oldest terminal job records once the retention
// cap is exceeded. Queued and running jobs are never dropped, so the
// record count is bounded by retain + in-flight jobs. The caller holds
// q.mu.
func (q *Runner) pruneLocked() {
	if q.retain <= 0 || len(q.order) <= q.retain {
		return
	}
	excess := len(q.order) - q.retain
	kept := q.order[:0]
	for _, id := range q.order {
		job := q.jobs[id]
		if excess > 0 && job.state.Terminal() {
			delete(q.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	q.order = kept
}

func (q *Runner) worker() {
	defer q.workers.Done()
	for {
		job, ok := q.dequeue()
		if !ok {
			return
		}
		q.run(job)
	}
}

// dequeue blocks until a job is available or the drain leaves both
// queues empty. Interactive jobs always dequeue before batch jobs;
// within a class the order is FIFO. Draining still hands out queued
// jobs — accepted work finishes, only admission has stopped.
func (q *Runner) dequeue() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.high) > 0 {
			job := q.high[0]
			q.high[0] = nil
			q.high = q.high[1:]
			return job, true
		}
		if len(q.low) > 0 {
			job := q.low[0]
			q.low[0] = nil
			q.low = q.low[1:]
			return job, true
		}
		if q.draining {
			return nil, false
		}
		q.cond.Wait()
	}
}

// datasetStateStore adapts the durable mine-state files to the
// task.StateStore interface for one (dataset, epoch) pair. Loads reject
// state from a NEWER epoch than the job's pin: an append that lands
// while the job waits in the queue must not feed the job state computed
// over rows it is not mining. Older-epoch state is fine — that is
// exactly the delta-resume case.
type datasetStateStore struct {
	st    *store.Store
	id    string
	epoch int
}

func (s datasetStateStore) LoadState(kind string) ([]byte, bool) {
	data, ep, ok := s.st.GetMineState(s.id, kind)
	if !ok || ep > s.epoch {
		return nil, false
	}
	return data, true
}

func (s datasetStateStore) SaveState(kind string, data []byte) {
	_ = s.st.PutMineState(s.id, kind, s.epoch, data) // best-effort cache
}

func (q *Runner) run(job *Job) {
	q.mu.Lock()
	if job.state != StateQueued { // canceled while waiting in the queue
		q.mu.Unlock()
		return
	}
	job.state = StateRunning
	q.mu.Unlock()

	ctx := job.ctx
	if q.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, q.timeout)
		defer cancel()
	}
	// The job computes under a scheduler grant: its kernels see a worker
	// budget that shrinks as more jobs run concurrently and recovers as
	// they finish, so one heavy job cannot monopolize the cores. The
	// grant also lends the job pooled scratch arenas; releasing it after
	// task.Run returns them — safe because task results are freshly
	// allocated copies, never views into arena memory.
	exec.ObserveQueueWait(time.Since(job.submitted))
	g := q.sched.Acquire()
	ctx = exec.WithGrant(ctx, g)
	// Each job gets its own trace buffer; the pipeline stages inside
	// task.Run record themselves on it through the context.
	tr := obs.NewTrace()
	var res any
	var err error
	if job.cols != nil {
		// Paged jobs read through the primitive cache: single-attribute
		// partitions and marginals computed by any earlier job on the same
		// (hash, epoch) are shared read-only instead of rederived. The
		// wrapper is per-job, so the cache never outlives its keying — an
		// append bumps the epoch and later submissions address new keys.
		cols := primcache.Wrap(job.cols, job.hash, job.epoch, q.prim)
		res, err = task.RunColumns(obs.WithTrace(ctx, tr), cols, job.task, job.params)
	} else {
		// Resident jobs run through the state-aware runner: with a store
		// attached they persist mine-state per (dataset, epoch) and, after
		// an append, absorb only the appended tuples instead of re-mining
		// from scratch. The result is identical either way.
		var ss task.StateStore
		if q.st != nil && job.dataset != nil {
			ss = datasetStateStore{st: q.st, id: job.datasetID, epoch: job.epoch}
		}
		start := time.Now()
		var delta bool
		res, delta, err = task.RunWithState(obs.WithTrace(ctx, tr), job.rel, job.task, job.params, ss)
		if delta && err == nil {
			obs.DeltaRemineSeconds.Observe(time.Since(start).Seconds())
		}
	}
	tr.Finish()
	g.Release()

	q.mu.Lock()
	job.trace = tr.Report()
	switch {
	case err == nil:
		job.state = StateDone
		job.result = res
		q.cache.Put(job.key, res)
	case errors.Is(err, context.Canceled):
		job.state = StateCanceled
		job.errMsg = err.Error()
	case errors.Is(err, context.DeadlineExceeded):
		job.state = StateFailed
		job.errMsg = fmt.Sprintf("job exceeded its %s timeout", q.timeout)
	default:
		job.state = StateFailed
		job.errMsg = err.Error()
	}
	close(job.done)
	q.releaseQuotaLocked(job)
	q.pruneLocked()
	rec := job.recordLocked()
	q.mu.Unlock()
	q.journal(rec)
	job.cancel()
}

// Get returns a snapshot of the job with the given id.
func (q *Runner) Get(id string) (JobView, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job, ok := q.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return job.viewLocked(), true
}

// Trace returns the job's per-stage timing report; it is meaningful
// only once the job is terminal (the handler enforces that).
func (q *Runner) Trace(id string) (obs.TraceReport, JobView, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job, ok := q.jobs[id]
	if !ok {
		return obs.TraceReport{}, JobView{}, false
	}
	return job.trace, job.viewLocked(), true
}

// QueueDepth returns how many accepted jobs are waiting for a worker,
// across both priority classes.
func (q *Runner) QueueDepth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.high) + len(q.low)
}

// StateCounts returns how many retained job records sit in each state.
func (q *Runner) StateCounts() map[State]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[State]int, 5)
	for _, job := range q.jobs {
		out[job.state]++
	}
	return out
}

// Result returns the job's artifact once it is done. A done job
// recovered from the journal carries no in-memory result; its artifact
// is re-read from the cache (memory or durable tier) by key.
func (q *Runner) Result(id string) (any, JobView, bool) {
	q.mu.Lock()
	job, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return nil, JobView{}, false
	}
	res := job.result
	view := job.viewLocked()
	key := job.key
	q.mu.Unlock()
	if res == nil && view.State == StateDone {
		if v, ok := q.cache.Peek(key); ok {
			res = v
		}
	}
	return res, view, true
}

// Page returns one cursor page of jobs in id order: the first `limit`
// jobs whose id sorts strictly after `cursor` (empty cursor = from the
// start), the cursor addressing the next page ("" on the last page),
// and the retained total. Ids are zero-padded sequence numbers, so
// lexicographic order is submission order and a cursor stays stable
// while jobs are submitted or pruned around it.
func (q *Runner) Page(cursor string, limit int) (items []JobView, next string, total int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	ids := make([]string, len(q.order))
	copy(ids, q.order)
	sort.Strings(ids)
	total = len(ids)
	start := sort.Search(len(ids), func(i int) bool { return ids[i] > cursor })
	end := len(ids)
	if limit > 0 && start+limit < end {
		end = start + limit
		next = ids[end-1]
	}
	items = make([]JobView, 0, end-start)
	for _, id := range ids[start:end] {
		items = append(items, q.jobs[id].viewLocked())
	}
	return items, next, total
}

// List returns snapshots of every job in submission order.
func (q *Runner) List() []JobView {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]JobView, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, q.jobs[id].viewLocked())
	}
	return out
}

// Cancel aborts a job: a queued job terminates immediately; a running
// one stops at its next pipeline-stage boundary.
func (q *Runner) Cancel(id string) (JobView, bool) {
	q.mu.Lock()
	job, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return JobView{}, false
	}
	var rec []byte
	if job.state == StateQueued {
		job.state = StateCanceled
		job.errMsg = "canceled before execution"
		close(job.done)
		q.releaseQuotaLocked(job)
		rec = job.recordLocked()
	}
	view := job.viewLocked()
	q.mu.Unlock()
	q.journal(rec)
	job.cancel()
	return view, true
}

// Done exposes the job's completion channel (closed on any terminal
// state); it reports false for unknown ids.
func (q *Runner) Done(id string) (<-chan struct{}, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job, ok := q.jobs[id]
	if !ok {
		return nil, false
	}
	return job.done, true
}

// Draining reports whether the runner has stopped admitting jobs.
func (q *Runner) Draining() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.draining
}

// StartDrain stops admission; already-accepted jobs keep running.
func (q *Runner) StartDrain() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.draining {
		q.draining = true
		q.cond.Broadcast()
	}
}

// Shutdown drains the pool: admission stops, queued and running jobs
// finish, workers exit. If ctx expires first, in-flight jobs are
// canceled (they abort at their next stage boundary) and Shutdown waits
// for the workers before returning the context's error.
func (q *Runner) Shutdown(ctx context.Context) error {
	q.StartDrain()
	done := make(chan struct{})
	go func() {
		q.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		q.baseCancel()
		<-done
		return ctx.Err()
	}
}
