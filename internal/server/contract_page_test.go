package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"structmine/internal/task"
)

// Three fixed tiny instances whose content hashes pin the pagination
// order (datasets list in hash order).
var pageCSVs = []string{
	"A,B\n1,x\n2,y\n",
	"C,D\n3,p\n4,q\n",
	"E,F\n5,m\n6,n\n",
}

// TestGoldenPagination pins the cursor-paginated list contract: the
// envelope shape, the stable ordering, and that walking pages with the
// returned cursor covers the corpus exactly once.
func TestGoldenPagination(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var ids []string
	for i, csv := range pageCSVs {
		var ds Dataset
		name := string(rune('a' + i))
		if code, body := doJSON(t, "POST", ts.URL+"/v1/datasets?name="+name, []byte(csv), &ds); code != http.StatusCreated {
			t.Fatalf("register %d: %d %s", i, code, body)
		}
		ids = append(ids, ds.ID)
	}
	// Three deterministic describe jobs (cache-miss, then done fast).
	for _, id := range ids {
		var v JobView
		if code, body := doJSON(t, "POST", ts.URL+"/v1/jobs",
			submitRequest{Dataset: id, Task: "describe"}, &v); code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submit %s: %d %s", id, code, body)
		}
		waitJob(t, ts, v.ID)
	}

	do := func(name, path string) string {
		t.Helper()
		code, raw := doJSON(t, "GET", ts.URL+path, nil, nil)
		if code != http.StatusOK {
			t.Fatalf("%s: %d %s", path, code, raw)
		}
		checkGolden(t, name, raw)
		return raw
	}

	var page struct {
		Items      []json.RawMessage `json:"items"`
		Total      int               `json:"total"`
		NextCursor string            `json:"next_cursor"`
	}

	// Datasets: page of 2, then the cursor-addressed remainder.
	raw := do("dataset_page1.json", "/v1/datasets?limit=2")
	if err := json.Unmarshal([]byte(raw), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Items) != 2 || page.Total != 3 || page.NextCursor == "" {
		t.Fatalf("page1 = %d items, total %d, cursor %q", len(page.Items), page.Total, page.NextCursor)
	}
	raw = do("dataset_page2.json", "/v1/datasets?limit=2&cursor="+page.NextCursor)
	page.NextCursor = "" // omitted on the last page; clear the stale value
	if err := json.Unmarshal([]byte(raw), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Items) != 1 || page.NextCursor != "" {
		t.Fatalf("page2 = %d items, cursor %q, want the final page", len(page.Items), page.NextCursor)
	}

	// Jobs: same walk, id-ordered.
	raw = do("job_page1.json", "/v1/jobs?limit=2")
	if err := json.Unmarshal([]byte(raw), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Items) != 2 || page.Total != 3 || page.NextCursor != "job-000002" {
		t.Fatalf("job page1 = %d items, total %d, cursor %q", len(page.Items), page.Total, page.NextCursor)
	}
	do("job_page2.json", "/v1/jobs?limit=2&cursor="+page.NextCursor)

	// Malformed limit is a 400 envelope.
	if code, raw := doJSON(t, "GET", ts.URL+"/v1/jobs?limit=zero", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad limit: %d %s", code, raw)
	}
}

// TestGoldenThrottleEnvelopes pins the uniform 429 contract: every
// throttled response is a typed envelope with its own code and a
// Retry-After header.
func TestGoldenThrottleEnvelopes(t *testing.T) {
	t.Run("rate_limited", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Tenant: TenantLimits{Rate: 0.001, Burst: 1}})
		var ds Dataset
		if code, body := doJSON(t, "POST", ts.URL+"/v1/datasets?name=toy", []byte(contractCSV), &ds); code != http.StatusCreated {
			t.Fatalf("register: %d %s", code, body)
		}
		doJSON(t, "POST", ts.URL+"/v1/jobs", submitRequest{Dataset: ds.ID, Task: "describe"}, nil)
		code, hdr, raw := doReq(t, "POST", ts.URL+"/v1/jobs",
			map[string]string{"Content-Type": "application/json"},
			[]byte(`{"dataset":"`+ds.ID+`","task":"describe"}`))
		if code != http.StatusTooManyRequests {
			t.Fatalf("want 429, got %d %s", code, raw)
		}
		if hdr.Get("Retry-After") == "" {
			t.Fatal("missing Retry-After")
		}
		checkGolden(t, "err_rate_limited.json", raw)
	})

	t.Run("quota_exceeded", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Workers: 1, Tenant: TenantLimits{MaxJobs: 1}})
		var ds Dataset
		if code, body := doJSON(t, "POST", ts.URL+"/v1/datasets?name=heavy", heavyCSV(), &ds); code != http.StatusCreated {
			t.Fatalf("register: %d %s", code, body)
		}
		var held JobView
		if code, body := doJSON(t, "POST", ts.URL+"/v1/jobs",
			submitRequest{Dataset: ds.ID, Task: "rank-fds"}, &held); code != http.StatusAccepted {
			t.Fatalf("pin submit: %d %s", code, body)
		}
		code, hdr, raw := doReq(t, "POST", ts.URL+"/v1/jobs",
			map[string]string{"Content-Type": "application/json"},
			[]byte(`{"dataset":"`+ds.ID+`","task":"describe"}`))
		if code != http.StatusTooManyRequests {
			t.Fatalf("want 429, got %d %s", code, raw)
		}
		if hdr.Get("Retry-After") == "" {
			t.Fatal("missing Retry-After")
		}
		checkGolden(t, "err_quota_exceeded.json", raw)
		doJSON(t, "POST", ts.URL+"/v1/jobs/"+held.ID+"/cancel", nil, nil)
		waitJob(t, ts, held.ID)
	})

	t.Run("queue_full", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
		var ds Dataset
		if code, body := doJSON(t, "POST", ts.URL+"/v1/datasets?name=heavy", heavyCSV(), &ds); code != http.StatusCreated {
			t.Fatalf("register: %d %s", code, body)
		}
		var accepted []string
		var raw string
		var hdrRetry string
		got429 := false
		for i := 0; i < 8 && !got429; i++ {
			var v JobView
			code, hdr, body := doReq(t, "POST", ts.URL+"/v1/jobs",
				map[string]string{"Content-Type": "application/json"},
				[]byte(`{"dataset":"`+ds.ID+`","task":"rank-fds","params":{"psi":0.`+string(rune('1'+i))+`}}`))
			switch code {
			case http.StatusAccepted:
				if json.Unmarshal([]byte(body), &v) == nil {
					accepted = append(accepted, v.ID)
				}
			case http.StatusTooManyRequests:
				got429, raw, hdrRetry = true, body, hdr.Get("Retry-After")
			default:
				t.Fatalf("submit %d: %d %s", i, code, body)
			}
		}
		if !got429 {
			t.Fatal("never saw queue_full with depth 1")
		}
		if hdrRetry == "" {
			t.Fatal("missing Retry-After")
		}
		checkGolden(t, "err_queue_full.json", raw)
		for _, id := range accepted {
			doJSON(t, "POST", ts.URL+"/v1/jobs/"+id+"/cancel", nil, nil)
		}
		for _, id := range accepted {
			waitJob(t, ts, id)
		}
	})
}

// TestGoldenAliasSunset pins the deprecation lifecycle of the bare-path
// aliases: Deprecation + Sunset headers while they serve, a 410 gone
// envelope once disabled, with /v1 unaffected either way.
func TestGoldenAliasSunset(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, hdr, _ := doReq(t, "GET", ts.URL+"/healthz", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("alias healthz: %d", code)
	}
	if hdr.Get("Deprecation") != "true" || hdr.Get("Sunset") != AliasSunset {
		t.Fatalf("alias headers = Deprecation %q Sunset %q", hdr.Get("Deprecation"), hdr.Get("Sunset"))
	}
	if code, hdr, _ := doReq(t, "GET", ts.URL+"/v1/healthz", nil, nil); code != http.StatusOK ||
		hdr.Get("Deprecation") != "" || hdr.Get("Sunset") != "" {
		t.Fatalf("/v1 must carry no deprecation headers (code %d)", code)
	}

	_, tsOff := newTestServer(t, Config{DisableDeprecated: true})
	code, _, raw := doReq(t, "GET", tsOff.URL+"/healthz", nil, nil)
	if code != http.StatusGone {
		t.Fatalf("disabled alias: %d %s, want 410", code, raw)
	}
	checkGolden(t, "err_gone.json", raw)
	if code, _, _ := doReq(t, "GET", tsOff.URL+"/v1/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("/v1 must keep serving with aliases disabled: %d", code)
	}
	// Every alias route answers 410, not just healthz.
	if code, _, raw := doReq(t, "POST", tsOff.URL+"/datasets?name=x", map[string]string{"Content-Type": "text/csv"}, []byte("A,B\n1,2\n")); code != http.StatusGone {
		t.Fatalf("disabled register alias: %d %s", code, raw)
	}
}

// TestPaginationWalkCoversAll walks a larger corpus page by page and
// checks exact cover: no item skipped, none repeated, in sort order.
func TestPaginationWalkCoversAll(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var ds Dataset
	if code, body := doJSON(t, "POST", ts.URL+"/v1/datasets?name=toy", []byte(contractCSV), &ds); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	const jobs = 23
	for i := 0; i < jobs; i++ {
		var v JobView
		code, body := doJSON(t, "POST", ts.URL+"/v1/jobs",
			submitRequest{Dataset: ds.ID, Task: "rank-fds",
				Params: task.Params{Psi: task.F(0.01 * float64(i+1))}}, &v)
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submit %d: %d %s", i, code, body)
		}
	}
	seen := map[string]bool{}
	cursor := ""
	var last string
	for {
		path := ts.URL + "/v1/jobs?limit=5"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		var page struct {
			Items      []JobView `json:"items"`
			Total      int       `json:"total"`
			NextCursor string    `json:"next_cursor"`
		}
		if code, body := doJSON(t, "GET", path, nil, &page); code != http.StatusOK {
			t.Fatalf("page: %d %s", code, body)
		}
		if page.Total != jobs {
			t.Fatalf("total = %d, want %d", page.Total, jobs)
		}
		for _, v := range page.Items {
			if seen[v.ID] {
				t.Fatalf("job %s repeated across pages", v.ID)
			}
			if v.ID <= last {
				t.Fatalf("order violation: %s after %s", v.ID, last)
			}
			seen[v.ID] = true
			last = v.ID
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(seen) != jobs {
		t.Fatalf("walk covered %d of %d jobs", len(seen), jobs)
	}
}
