package server

import (
	"encoding/json"
	"net/http"

	"structmine/internal/cluster"
)

// Cluster routing glue. With Config.Router set every node serves in
// router mode: dataset-scoped requests whose rendezvous owner is
// another replica are proxied there over the same /v1 wire protocol,
// and job-id requests unknown locally are resolved through the
// router's route memory or a one-hop scatter. Three invariants:
//
//   - local first: a dataset registered on this node is always served
//     from local state (counted as an owner move when the rendezvous
//     table names another node), so routing-table drift degrades to
//     extra hops, never to wrong answers;
//   - one hop max: a request already carrying the hop header is
//     answered locally no matter what, so no proxy loop is possible;
//   - node-local surfaces stay local: /v1/healthz and /v1/metrics
//     always report this node, never a peer.

// routeDataset applies cluster routing for a dataset-scoped request.
// It reports true when the request was fully handled here (proxied to
// the owner, or answered 503 because the owner is down); the caller
// then returns without touching local state. body is the original
// request body to forward (nil for GETs).
func (s *Server) routeDataset(w http.ResponseWriter, r *http.Request, idOrHash string, body []byte) bool {
	rt := s.cfg.Router
	if rt == nil || cluster.Hopped(r) {
		return false
	}
	if _, ok := s.reg.Get(idOrHash); ok {
		if !rt.OwnsLocally(idOrHash) {
			rt.NoteOwnerMove()
		}
		return false
	}
	owner := rt.Owner(idOrHash)
	if owner.ID == rt.Self().ID {
		return false // we own it (registered or not) — answer locally
	}
	if !rt.Prober().Healthy(owner.ID) {
		writeErrFor(w, cluster.ErrPeerUnavailable)
		return true
	}
	if _, _, handled := rt.Forward(w, r, owner, body); !handled {
		writeErrFor(w, cluster.ErrPeerUnavailable)
	}
	return true
}

// routeJob resolves a job-id request that this node cannot answer.
// Job ids are node-local (the submitting node numbers them), so there
// is no rendezvous owner to compute; instead the router remembers
// which peer answered each proxied submission, and falls back to a
// one-hop scatter across the healthy peers. It reports true when a
// peer's response was relayed; false means answer locally (which for
// an unknown id is the usual 404).
func (s *Server) routeJob(w http.ResponseWriter, r *http.Request, jobID string) bool {
	rt := s.cfg.Router
	if rt == nil || cluster.Hopped(r) {
		return false
	}
	if _, ok := s.jobs.Get(jobID); ok {
		return false
	}
	// Remembered route first: the peer that accepted the submission.
	if peerID, ok := rt.RouteFor(jobID); ok && rt.Prober().Healthy(peerID) {
		for _, n := range rt.Table().Nodes() {
			if n.ID != peerID {
				continue
			}
			if status, header, data, err := rt.Fetch(r, n, nil); err == nil {
				cluster.Relay(w, status, header, data)
				return true
			}
			break // owner down — fall through to the scatter
		}
	}
	// Scatter: ask every healthy peer; the first one that recognizes
	// the id answers, and the route is remembered for later polls.
	for _, n := range rt.HealthyPeers() {
		status, header, data, err := rt.Fetch(r, n, nil)
		if err != nil || status == http.StatusNotFound {
			continue
		}
		rt.RememberRoute(jobID, n.ID)
		cluster.Relay(w, status, header, data)
		return true
	}
	return false
}

// rememberSubmittedJob parses a proxied job submission's response and
// records which peer owns the new job id, so later polls skip the
// scatter.
func (s *Server) rememberSubmittedJob(peerID string, status int, body []byte) {
	if status != http.StatusOK && status != http.StatusAccepted {
		return
	}
	var v struct {
		ID string `json:"id"`
	}
	if json.Unmarshal(body, &v) == nil && v.ID != "" {
		s.cfg.Router.RememberRoute(v.ID, peerID)
	}
}

// nodeID returns this node's cluster identity ("" outside router
// mode) — the value of healthz's node field and the owner labels on
// list items.
func (s *Server) nodeID() string {
	if s.cfg.Router == nil {
		return ""
	}
	return s.cfg.Router.Self().ID
}

// ownerOf returns the rendezvous owner's id for a dataset id or hash
// ("" outside router mode).
func (s *Server) ownerOf(idOrHash string) string {
	if s.cfg.Router == nil {
		return ""
	}
	return s.cfg.Router.Owner(idOrHash).ID
}
