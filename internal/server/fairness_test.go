package server

import (
	"bytes"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"structmine/internal/task"
)

// heavyCSV builds a low-cardinality wide instance whose FD lattice is
// deep (13 binary attributes, no FDs hold), so mine-fds runs TANE for
// seconds — long enough for small jobs to arrive, run and finish while
// it occupies one pool worker and a shrinking core budget.
func heavyCSV() []byte {
	const attrs, rows = 13, 6000
	rng := rand.New(rand.NewSource(9))
	var b bytes.Buffer
	for j := 0; j < attrs; j++ {
		if j > 0 {
			b.WriteByte(',')
		}
		b.WriteString("A" + strconv.Itoa(j))
	}
	b.WriteByte('\n')
	for i := 0; i < rows; i++ {
		for j := 0; j < attrs; j++ {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(rng.Intn(2)))
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// One heavy TANE job must not starve small jobs sharing the pool: with
// two pool workers and a four-core scheduler, the heavy job takes one
// worker and (after rebalance) at most half the core budget, so a
// stream of small jobs drains through the other worker with bounded
// latency instead of queueing behind the big one.
func TestFairnessSmallJobsNotStarved(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, Procs: 4, JobTimeout: 2 * time.Minute})
	heavyDS, _, err := s.reg.RegisterCSV("heavy", "fairness", heavyCSV())
	if err != nil {
		t.Fatal(err)
	}
	smallDS, _, err := s.reg.RegisterCSV("small", "fairness", db2CSV(t))
	if err != nil {
		t.Fatal(err)
	}

	heavy, err := s.jobs.Submit(heavyDS.ID, "mine-fds", task.Params{})
	if err != nil {
		t.Fatal(err)
	}

	const smallJobs = 6
	start := time.Now()
	ids := make([]string, smallJobs)
	for i := range ids {
		v, err := s.jobs.Submit(smallDS.ID, "describe", task.Params{})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = v.ID
	}
	for _, id := range ids {
		done, ok := s.jobs.Done(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("small job %s starved behind the heavy job", id)
		}
	}
	smallElapsed := time.Since(start)

	if v, ok := s.jobs.Get(heavy.ID); ok && !v.State.Terminal() {
		t.Logf("heavy job still running after smalls finished (%v) — no starvation", smallElapsed)
	}
	hd, ok := s.jobs.Done(heavy.ID)
	if !ok {
		t.Fatal("heavy job vanished")
	}
	select {
	case <-hd:
	case <-time.After(90 * time.Second):
		t.Fatal("heavy job did not finish")
	}
	hv, _ := s.jobs.Get(heavy.ID)
	if hv.State != StateDone {
		t.Fatalf("heavy job state = %s (%s), want done", hv.State, hv.Error)
	}
	for _, id := range ids {
		if v, _ := s.jobs.Get(id); v.State != StateDone {
			t.Fatalf("small job %s state = %s (%s), want done", id, v.State, v.Error)
		}
	}
	// The latency bound is the fairness assertion: the smalls must never
	// wait for the heavy job's completion (~seconds of TANE) — only for
	// each other on the second pool worker.
	if smallElapsed > 20*time.Second {
		t.Fatalf("small jobs took %v to drain", smallElapsed)
	}
}
