// Package exec is the process-wide execution engine behind every
// CPU-bound fan-out in the miner. It replaces the organically grown
// per-package machinery (internal/par's GOMAXPROCS reads, LIMBO's slab
// arena, TANE's stamped prodScratch slab, AIB's scratch buffers) with
// three shared pieces:
//
//   - worker budgets: a fair Scheduler hands each running job a Grant
//     carrying the number of workers its parallel loops may use. Budgets
//     are rebalanced on every acquire/release, so a heavy job's fan-out
//     shrinks the moment smaller jobs arrive and grows back when they
//     finish. Kernels read the budget through the context (Workers), so
//     the same code serves budgeted server jobs, fixed-budget tests
//     (WithWorkers), and standalone library callers (GOMAXPROCS).
//
//   - pooled arenas: size-classed numeric slab allocators (Arena)
//     checked out per job and recycled through a process pool on
//     release, plus a generic struct-slab allocator (Structs) for the
//     typed carving the kernels do. Peak scratch memory across
//     concurrent jobs is bounded by the pool instead of growing one
//     private arena per kernel instance.
//
//   - one cutoff policy: the per-kernel calibrated table in cutoff.go
//     replaces the single par.Cutoff constant, and internal/par's chunk
//     handout becomes work-stealing so a skewed chunk cannot serialize
//     the tail.
//
// Determinism contract: budgets only decide how index ranges are
// partitioned, never what is computed per index. Every kernel in this
// repo writes per-index results into preallocated slots and reduces
// serially, so results are bit-identical for any budget — the
// parallel-vs-serial property suites pin this at budgets {1, 2, 4, 8}.
//
// Aliasing contract: memory carved from a checked-out Arena is scratch.
// It may be referenced freely while the job runs, but must never be
// reachable from a job's result (results are freshly allocated
// JSON-serializable structs), because Release returns the slabs to the
// pool for the next job to overwrite.
package exec

import (
	"context"
	"runtime"
)

type ctxKey int

const (
	grantKey ctxKey = iota
	workersKey
)

// WithGrant attaches a scheduler grant to the context; the kernels under
// this context size their fan-outs with the grant's live budget.
func WithGrant(ctx context.Context, g *Grant) context.Context {
	return context.WithValue(ctx, grantKey, g)
}

// GrantFrom returns the context's grant, if one is attached.
func GrantFrom(ctx context.Context) (*Grant, bool) {
	g, ok := ctx.Value(grantKey).(*Grant)
	return g, ok
}

// WithWorkers attaches a fixed worker budget to the context, overriding
// any grant. Tests use it to sweep budgets deterministically; callers
// embedding the miner can use it to cap a library call's parallelism.
func WithWorkers(ctx context.Context, n int) context.Context {
	if n < 1 {
		n = 1
	}
	return context.WithValue(ctx, workersKey, n)
}

// Workers resolves the context's worker budget: a fixed WithWorkers
// value wins, then a live grant's current allotment, then GOMAXPROCS
// (the standalone-caller fallback, matching the pre-engine behavior).
func Workers(ctx context.Context) int {
	if ctx != nil {
		if n, ok := ctx.Value(workersKey).(int); ok {
			return n
		}
		if g, ok := GrantFrom(ctx); ok {
			return g.Workers()
		}
	}
	return runtime.GOMAXPROCS(0)
}

// CheckoutArena returns a pooled arena tracked by the context's grant
// (recycled when the job releases its grant), or a private unpooled
// arena for standalone callers, whose slabs are simply garbage
// collected with their owner.
func CheckoutArena(ctx context.Context) *Arena {
	if ctx != nil {
		if g, ok := GrantFrom(ctx); ok {
			return g.Checkout()
		}
	}
	return NewArena()
}
