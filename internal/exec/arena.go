package exec

import (
	"sync"
	"sync/atomic"
)

// Arena is the engine's numeric slab allocator: int32 and float64
// chunks are carved from geometrically sized slabs, so a job's scratch
// costs O(slabs) allocations instead of O(carves). Chunks are never
// freed individually — an outgrown buffer is abandoned inside its slab
// (bounded waste: slab sizes grow geometrically, so total slab volume
// is a constant factor of the carve volume).
//
// Arenas are single-goroutine, like the kernel scratch that uses them
// (one arena per worker). Pooled arenas come from Grant.Checkout and
// return to the process pool on Grant.Release with their largest slab
// retained, so steady-state server traffic reuses slabs instead of
// re-growing them per job.
type Arena struct {
	i32 numSlab[int32]
	f64 numSlab[float64]
}

const (
	arenaMinSlab = 8 << 10 // first slab: 8192 elements (the pre-engine slab size)
	arenaMaxSlab = 1 << 20 // slab growth cap: 1M elements
	sizeInt32    = 4       // unsafe.Sizeof, spelled out
	sizeFloat64  = 8
)

// numSlab carves fixed-type chunks out of a current slab, replacing it
// with a geometrically larger one when full. The largest backing array
// ever owned is remembered so Reset can reuse it.
type numSlab[T int32 | float64] struct {
	cur    []T
	big    []T // slab with the largest capacity seen (may hold live data until Reset)
	class  int // size of the next slab to allocate
	carved int // elements carved since the last Reset
}

func (s *numSlab[T]) carve(c int) []T {
	if cap(s.cur)-len(s.cur) < c {
		size := s.class
		if size < arenaMinSlab {
			size = arenaMinSlab
		}
		for size < c {
			size <<= 1
		}
		if size < arenaMaxSlab {
			s.class = size << 1
		} else {
			s.class = arenaMaxSlab
		}
		if cap(s.cur) > cap(s.big) {
			s.big = s.cur
		}
		s.cur = make([]T, 0, size)
	}
	n := len(s.cur)
	out := s.cur[n : n : n+c]
	s.cur = s.cur[: n+c : cap(s.cur)]
	s.carved += c
	return out
}

// reset abandons every carved chunk and keeps only the largest backing
// array for reuse. Caller guarantees no carved chunk is still live.
func (s *numSlab[T]) reset() {
	if cap(s.cur) > cap(s.big) {
		s.big = s.cur
	}
	s.cur = s.big[:0]
	s.carved = 0
}

// NewArena returns an empty, unpooled arena. Kernels running without a
// grant use one; its slabs die with it.
func NewArena() *Arena { return &Arena{} }

// Int32s carves a zero-length int32 chunk with capacity c.
func (a *Arena) Int32s(c int) []int32 { return a.i32.carve(c) }

// Float64s carves a zero-length float64 chunk with capacity c.
func (a *Arena) Float64s(c int) []float64 { return a.f64.carve(c) }

// AppendInt32s carves an exact-size copy of src.
func (a *Arena) AppendInt32s(src []int32) []int32 {
	return append(a.i32.carve(len(src)), src...)
}

// AppendFloat64s carves an exact-size copy of src.
func (a *Arena) AppendFloat64s(src []float64) []float64 {
	return append(a.f64.carve(len(src)), src...)
}

// CarvedBytes is the byte volume carved since the arena was (re)issued —
// the per-job scratch high-water mark the exec metrics report.
func (a *Arena) CarvedBytes() int {
	return a.i32.carved*sizeInt32 + a.f64.carved*sizeFloat64
}

// Reset abandons all carved chunks, keeping the largest slab of each
// type for reuse. The owner must drop every carved reference first.
func (a *Arena) Reset() {
	recordArenaHighwater(a.CarvedBytes())
	a.i32.reset()
	a.f64.reset()
}

// --- process pool ---

var arenaPool = sync.Pool{New: func() any { return NewArena() }}

func getArena() *Arena {
	execArenaCheckouts.Inc()
	return arenaPool.Get().(*Arena)
}

func putArena(a *Arena) {
	a.Reset()
	arenaPool.Put(a)
}

// arenaHighwater is the largest per-job carve volume seen, in bytes,
// exported as structmine_exec_arena_highwater_bytes.
var arenaHighwater atomic.Int64

func recordArenaHighwater(bytes int) {
	for {
		old := arenaHighwater.Load()
		if int64(bytes) <= old || arenaHighwater.CompareAndSwap(old, int64(bytes)) {
			return
		}
	}
}
