package exec

// Structs is the typed counterpart of Arena: a slab allocator for one
// struct (or pointer) type, carved the same way LIMBO's node/entry/DCF
// slabs and AIB's pair scratch used to be, but shared as one
// implementation. Unlike Arena it is not pooled — Go's pool can't hold
// per-type slabs without reflection — so a Structs lives exactly as
// long as its owner and its slabs are garbage collected with it.
//
// Single-goroutine, like the kernel state that embeds it.
type Structs[T any] struct {
	cur   []T
	class int
}

const (
	structsMinSlab = 256 // the pre-engine struct slab size
	structsMaxSlab = 1 << 16
)

func (s *Structs[T]) grow(c int) {
	size := s.class
	if size < structsMinSlab {
		size = structsMinSlab
	}
	for size < c {
		size <<= 1
	}
	if size < structsMaxSlab {
		s.class = size << 1
	} else {
		s.class = structsMaxSlab
	}
	s.cur = make([]T, 0, size)
}

// New carves one zeroed T.
func (s *Structs[T]) New() *T {
	if len(s.cur) == cap(s.cur) {
		s.grow(1)
	}
	s.cur = s.cur[:len(s.cur)+1]
	return &s.cur[len(s.cur)-1]
}

// Slice carves a zero-length chunk with capacity c.
func (s *Structs[T]) Slice(c int) []T {
	if cap(s.cur)-len(s.cur) < c {
		s.grow(c)
	}
	n := len(s.cur)
	out := s.cur[n : n : n+c]
	s.cur = s.cur[: n+c : cap(s.cur)]
	return out
}
