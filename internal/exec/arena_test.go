package exec

import "testing"

// Chunks carved from one arena never alias: every chunk keeps its own
// values no matter how many carves (and slab replacements) follow.
func TestArenaCarveDisjoint(t *testing.T) {
	a := NewArena()
	const chunks = 300
	i32 := make([][]int32, chunks)
	f64 := make([][]float64, chunks)
	for i := 0; i < chunks; i++ {
		c := 1 + (i*37)%150 // varied sizes straddling slab boundaries
		i32[i] = a.Int32s(c)
		f64[i] = a.Float64s(c)
		for j := 0; j < c; j++ {
			i32[i] = append(i32[i], int32(i))
			f64[i] = append(f64[i], float64(i))
		}
	}
	for i := range i32 {
		for j := range i32[i] {
			if i32[i][j] != int32(i) || f64[i][j] != float64(i) {
				t.Fatalf("chunk %d slot %d clobbered: %d / %v", i, j, i32[i][j], f64[i][j])
			}
		}
	}
	if a.CarvedBytes() == 0 {
		t.Fatal("CarvedBytes = 0 after carving")
	}
}

// A carved chunk's append beyond capacity migrates to fresh memory
// instead of clobbering the neighbor carved right after it.
func TestArenaCarveCapacityIsHard(t *testing.T) {
	a := NewArena()
	x := a.Int32s(4)
	y := append(a.Int32s(4), 7, 7, 7, 7)
	x = append(x, 1, 2, 3, 4, 5) // one past capacity: must reallocate
	_ = x
	for i, v := range y {
		if v != 7 {
			t.Fatalf("neighbor chunk clobbered at %d: %d", i, v)
		}
	}
}

// Reset abandons carved chunks but keeps the largest backing array, so
// a steady-state reuse cycle stops allocating new slabs.
func TestArenaResetKeepsBiggestSlab(t *testing.T) {
	a := NewArena()
	_ = a.Float64s(3 * arenaMinSlab) // forces growth past the first class
	grown := cap(a.f64.cur)
	a.Reset()
	if a.CarvedBytes() != 0 {
		t.Fatalf("CarvedBytes = %d after Reset, want 0", a.CarvedBytes())
	}
	if got := cap(a.f64.cur); got != grown {
		t.Fatalf("Reset kept slab of cap %d, want the grown %d", got, grown)
	}
	// Re-carving the same volume must fit the retained slab.
	before := cap(a.f64.cur)
	_ = a.Float64s(2 * arenaMinSlab)
	if cap(a.f64.cur) != before {
		t.Fatal("re-carve after Reset allocated a new slab despite a big enough retained one")
	}
}

// Append helpers carve exact-size copies that do not alias the source.
func TestArenaAppendCopies(t *testing.T) {
	a := NewArena()
	src := []int32{1, 2, 3}
	cp := a.AppendInt32s(src)
	src[0] = 99
	if cp[0] != 1 || len(cp) != 3 {
		t.Fatalf("AppendInt32s aliases its source: %v", cp)
	}
	fsrc := []float64{0.5, 1.5}
	fcp := a.AppendFloat64s(fsrc)
	fsrc[1] = -1
	if fcp[1] != 1.5 {
		t.Fatalf("AppendFloat64s aliases its source: %v", fcp)
	}
}

// The pool round-trips arenas through Reset: a returned arena comes
// back empty and usable.
func TestArenaPoolRoundTrip(t *testing.T) {
	a := getArena()
	_ = a.Int32s(1000)
	putArena(a)
	b := getArena()
	if b.CarvedBytes() != 0 {
		t.Fatalf("pooled arena not reset: CarvedBytes = %d", b.CarvedBytes())
	}
	buf := append(b.Int32s(4), 1, 2, 3, 4)
	if len(buf) != 4 {
		t.Fatalf("pooled arena carve broken: %v", buf)
	}
	putArena(b)
}

// Structs hands out stable pointers and disjoint slices: growing the
// slab never moves or clobbers earlier carves.
func TestStructsStableAndDisjoint(t *testing.T) {
	type pair struct{ a, b int }
	var s Structs[pair]
	ptrs := make([]*pair, 0, 3*structsMinSlab)
	for i := 0; i < 3*structsMinSlab; i++ {
		p := s.New()
		p.a, p.b = i, -i
		ptrs = append(ptrs, p)
	}
	for i, p := range ptrs {
		if p.a != i || p.b != -i {
			t.Fatalf("struct %d moved or clobbered: %+v", i, *p)
		}
	}
	x := s.Slice(10)
	y := append(s.Slice(10), pair{7, 7})
	x = append(x, pair{1, 1}, pair{2, 2})
	_ = x
	if y[0].a != 7 {
		t.Fatalf("slices alias: %+v", y[0])
	}
}

// Oversized requests (beyond the max slab class) still succeed with a
// dedicated slab.
func TestArenaOversizedCarve(t *testing.T) {
	a := NewArena()
	huge := a.Int32s(arenaMaxSlab + 1)
	if cap(huge) < arenaMaxSlab+1 {
		t.Fatalf("oversized carve capacity %d", cap(huge))
	}
	var s Structs[int64]
	big := s.Slice(structsMaxSlab * 2)
	if cap(big) < structsMaxSlab*2 {
		t.Fatalf("oversized struct carve capacity %d", cap(big))
	}
}

// Kernel table sanity: every kernel has a name and a positive cutoff,
// and out-of-range values fall back to Generic.
func TestKernelTable(t *testing.T) {
	for k := Kernel(0); k < numKernels; k++ {
		if k.Cutoff() <= 0 {
			t.Fatalf("kernel %s has cutoff %d", k, k.Cutoff())
		}
		if k.String() == "" {
			t.Fatalf("kernel %d has no name", k)
		}
	}
	if bogus := Kernel(250); bogus.Cutoff() != Generic.Cutoff() || bogus.String() != Generic.String() {
		t.Fatal("out-of-range kernel does not fall back to Generic")
	}
}
