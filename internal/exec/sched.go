package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Scheduler divides a fixed worker capacity fairly among the jobs that
// are currently running. Each running job holds one Grant; the grant's
// worker allotment is capacity/K (K = live grants) with the remainder
// going to the earliest acquirers, and never below one. Every Acquire
// and Release rebalances all live grants, so a heavy job's next fan-out
// shrinks as soon as smaller jobs arrive — fan-outs re-read the budget
// at each parallel loop, not once per job.
type Scheduler struct {
	procs int // 0 means "read GOMAXPROCS at rebalance time"

	mu     sync.Mutex
	seq    uint64
	grants []*Grant // live grants in acquisition order
}

// Default is the process-wide scheduler used when no explicit one is
// wired (standalone library callers, the CLI).
var Default = NewScheduler(0)

// NewScheduler returns a scheduler with the given worker capacity;
// procs ≤ 0 tracks GOMAXPROCS.
func NewScheduler(procs int) *Scheduler {
	if procs < 0 {
		procs = 0
	}
	return &Scheduler{procs: procs}
}

func (s *Scheduler) capacity() int {
	if s.procs > 0 {
		return s.procs
	}
	return runtime.GOMAXPROCS(0)
}

// Acquire registers a new job and returns its grant. The caller must
// Release it when the job finishes, or the workers stay reserved.
func (s *Scheduler) Acquire() *Grant {
	g := &Grant{s: s}
	s.mu.Lock()
	s.seq++
	g.seq = s.seq
	s.grants = append(s.grants, g)
	s.rebalanceLocked()
	live := len(s.grants)
	s.mu.Unlock()

	execGrantsTotal.Inc()
	execActiveGrants.Set(int64(live))
	return g
}

// rebalanceLocked recomputes every live grant's allotment: an equal
// share of the capacity, remainder to the earliest acquirers, floor one
// (oversubscription beyond capacity degrades gracefully rather than
// deadlocking admission — admission control is the server's job pool).
func (s *Scheduler) rebalanceLocked() {
	k := len(s.grants)
	if k == 0 {
		execGrantedWorkers.Set(0)
		return
	}
	p := s.capacity()
	share, rem := p/k, p%k
	if share < 1 {
		share, rem = 1, 0
	}
	total := 0
	for i, g := range s.grants {
		w := share
		if i < rem {
			w++
		}
		g.workers.Store(int32(w))
		total += w
	}
	execGrantedWorkers.Set(int64(total))
}

// Grant is one job's admission into the scheduler: a live worker budget
// plus the pooled arenas the job has checked out. Workers may be read
// from any goroutine; Checkout and Release must be called from the
// job's own goroutine (the kernels check scratch out before fanning
// out).
type Grant struct {
	s       *Scheduler
	seq     uint64
	workers atomic.Int32

	mu       sync.Mutex
	arenas   []*Arena
	released bool
}

// Workers returns the grant's current allotment. It is re-read by every
// parallel loop, so a long job tracks rebalances mid-flight.
func (g *Grant) Workers() int {
	if w := g.workers.Load(); w > 0 {
		return int(w)
	}
	return 1
}

// Checkout takes an arena from the process pool and ties its lifetime
// to the grant: Release returns it. Safe for concurrent use (per-worker
// scratch is checked out up front, but defensively locked anyway).
func (g *Grant) Checkout() *Arena {
	a := getArena()
	g.mu.Lock()
	if g.released {
		// Late checkout after release: hand out a working arena anyway,
		// unpooled, rather than corrupting the pool.
		g.mu.Unlock()
		return a
	}
	g.arenas = append(g.arenas, a)
	g.mu.Unlock()
	return a
}

// Release returns the grant's workers to the scheduler and its arenas
// to the pool. Idempotent. After Release the job must not touch any
// memory carved from the checked-out arenas.
func (g *Grant) Release() {
	g.mu.Lock()
	if g.released {
		g.mu.Unlock()
		return
	}
	g.released = true
	arenas := g.arenas
	g.arenas = nil
	g.mu.Unlock()

	for _, a := range arenas {
		putArena(a)
	}

	s := g.s
	s.mu.Lock()
	for i, other := range s.grants {
		if other == g {
			s.grants = append(s.grants[:i], s.grants[i+1:]...)
			break
		}
	}
	s.rebalanceLocked()
	live := len(s.grants)
	s.mu.Unlock()
	execActiveGrants.Set(int64(live))
}
