package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// budgets reads every live grant's allotment in acquisition order.
func budgets(gs []*Grant) []int {
	out := make([]int, len(gs))
	for i, g := range gs {
		out[i] = g.Workers()
	}
	return out
}

func eq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The scheduler splits its capacity into equal shares with the
// remainder going to the earliest acquirers, and rebalances every live
// grant on each acquire and release.
func TestSchedulerFairSplits(t *testing.T) {
	s := NewScheduler(8)

	g1 := s.Acquire()
	if got := budgets([]*Grant{g1}); !eq(got, []int{8}) {
		t.Fatalf("one grant: budgets = %v, want [8]", got)
	}
	g2 := s.Acquire()
	if got := budgets([]*Grant{g1, g2}); !eq(got, []int{4, 4}) {
		t.Fatalf("two grants: budgets = %v, want [4 4]", got)
	}
	g3 := s.Acquire()
	if got := budgets([]*Grant{g1, g2, g3}); !eq(got, []int{3, 3, 2}) {
		t.Fatalf("three grants: budgets = %v, want [3 3 2]", got)
	}

	// Releasing the middle grant immediately returns its share to the
	// survivors — the heavy job's next fan-out sees the bigger budget.
	g2.Release()
	if got := budgets([]*Grant{g1, g3}); !eq(got, []int{4, 4}) {
		t.Fatalf("after release: budgets = %v, want [4 4]", got)
	}
	g1.Release()
	if got := g3.Workers(); got != 8 {
		t.Fatalf("last grant standing: Workers = %d, want 8", got)
	}
	g3.Release()
}

// Oversubscription beyond capacity degrades to a floor of one worker
// per job instead of refusing or deadlocking; admission control belongs
// to the server's worker pool.
func TestSchedulerOversubscriptionFloor(t *testing.T) {
	s := NewScheduler(2)
	gs := make([]*Grant, 5)
	for i := range gs {
		gs[i] = s.Acquire()
	}
	for i, g := range gs {
		if g.Workers() != 1 {
			t.Fatalf("grant %d: Workers = %d, want 1 under oversubscription", i, g.Workers())
		}
	}
	for _, g := range gs {
		g.Release()
	}
}

// Release is idempotent and a released grant still reports a sane
// (floor-one) budget.
func TestGrantReleaseIdempotent(t *testing.T) {
	s := NewScheduler(4)
	g := s.Acquire()
	g.Release()
	g.Release() // must not panic or double-remove
	if got := g.Workers(); got < 1 {
		t.Fatalf("released grant Workers = %d, want >= 1", got)
	}
	if g2 := s.Acquire(); g2.Workers() != 4 {
		t.Fatalf("fresh grant after double release: Workers = %d, want 4", g2.Workers())
	} else {
		g2.Release()
	}
}

// Workers resolves: fixed WithWorkers > live grant > GOMAXPROCS.
func TestWorkersResolution(t *testing.T) {
	ctx := context.Background()
	if got, want := Workers(ctx), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("bare context: Workers = %d, want GOMAXPROCS %d", got, want)
	}

	s := NewScheduler(6)
	g := s.Acquire()
	defer g.Release()
	gctx := WithGrant(ctx, g)
	if got := Workers(gctx); got != 6 {
		t.Fatalf("grant context: Workers = %d, want 6", got)
	}
	if got := Workers(WithWorkers(gctx, 3)); got != 3 {
		t.Fatalf("fixed budget overrides grant: Workers = %d, want 3", got)
	}
	if got := Workers(WithWorkers(ctx, 0)); got != 1 {
		t.Fatalf("WithWorkers(0) clamps to 1, got %d", got)
	}
}

// A grant tracks its checked-out arenas and a late checkout after
// release still returns a working (unpooled) arena.
func TestGrantCheckoutLifecycle(t *testing.T) {
	s := NewScheduler(4)
	g := s.Acquire()
	a := g.Checkout()
	buf := a.Int32s(100)
	if cap(buf) < 100 {
		t.Fatalf("carve capacity %d, want >= 100", cap(buf))
	}
	g.Release()

	late := g.Checkout()
	lateBuf := append(late.Float64s(8), 1, 2, 3)
	if len(lateBuf) != 3 || lateBuf[2] != 3 {
		t.Fatalf("late checkout arena is broken: %v", lateBuf)
	}
}

// Concurrent acquire/release/read must be race-free and keep every
// observed budget within [1, capacity]. Run with -race.
func TestSchedulerConcurrentChurn(t *testing.T) {
	s := NewScheduler(4)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				g := s.Acquire()
				if w := g.Workers(); w < 1 || w > 4 {
					t.Errorf("budget %d out of [1,4]", w)
				}
				a := g.Checkout()
				_ = a.Float64s(32)
				g.Release()
			}
		}()
	}
	wg.Wait()
	if n := len(s.grants); n != 0 {
		t.Fatalf("%d grants leaked after churn", n)
	}
}

// BenchmarkFanoutOverhead measures the spawn+join cost the cutoff table
// amortizes: each fan-out below a cutoff must dwarf this number or the
// parallel path loses to the serial one. The per-kernel thresholds in
// cutoff.go target >= 10x this overhead in useful work.
func BenchmarkFanoutOverhead(b *testing.B) {
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				wg.Add(w)
				for j := 0; j < w; j++ {
					go wg.Done()
				}
				wg.Wait()
			}
		})
	}
}
