package exec

// Kernel names a parallel fan-out site so the cutoff policy and the
// steal metrics can be per-kernel. The old policy was one constant
// (par.Cutoff = 4096 work units) for every site; the table below is
// calibrated per kernel because a "work unit" costs wildly different
// amounts across them — a full δI evaluation at an AIB pair site versus
// a handful of probe-table operations per tuple at a TANE product site.
type Kernel uint8

const (
	// Generic is the fallback for fan-outs without a calibrated entry.
	Generic Kernel = iota
	// AIBPairs: initial δI over the q(q−1)/2 candidate pair space; one
	// work unit is one δI evaluation over sparse supports (~µs).
	AIBPairs
	// AIBRecompute: δI recomputation against a fresh merge; work counts
	// sparse elements touched (~5 ns each).
	AIBRecompute
	// LIMBOClosest: closest-entry δI scan during DCF-tree descent; work
	// counts entries × (support+1) sparse adds (~5 ns each).
	LIMBOClosest
	// LIMBOAssign: object→representative assignment; work counts
	// objects × representatives δI evaluations (~µs each).
	LIMBOAssign
	// TANEProduct: partition products per lattice level; work counts
	// stripped-partition tuples (~10 ns each).
	TANEProduct
	// ColScan: page-stripe scans over a Columns source; work counts
	// tuples decoded (~1 ns each resident, dominated by page I/O paged).
	ColScan

	numKernels
)

// cutoffs is the minimum work (in the kernel's own units) below which a
// fan-out runs serially: spawn+join overhead for a handful of workers
// is ~10–20 µs (measured by BenchmarkFanoutOverhead in this package),
// so each entry targets ≥ 10× that in useful work. Expensive-unit
// kernels (δI evaluations) keep low thresholds; cheap-unit kernels
// (per-element passes) need far more units to amortize the same
// overhead. Generic keeps the historical 4096.
var cutoffs = [numKernels]int{
	Generic:      4096,
	AIBPairs:     512,   // ~µs/unit → ~0.5 ms of work
	AIBRecompute: 16384, // ~5 ns/unit → ~80 µs of work
	LIMBOClosest: 16384, // ~5 ns/unit → ~80 µs of work
	LIMBOAssign:  256,   // ~µs/unit → ~0.25 ms of work
	TANEProduct:  8192,  // ~10 ns/unit → ~80 µs of work
	ColScan:      16384, // ~1–10 ns/unit → ≥ ~20 µs of work (4+ stripes)
}

var kernelNames = [numKernels]string{
	Generic:      "generic",
	AIBPairs:     "aib_pairs",
	AIBRecompute: "aib_recompute",
	LIMBOClosest: "limbo_closest",
	LIMBOAssign:  "limbo_assign",
	TANEProduct:  "tane_product",
	ColScan:      "col_scan",
}

// Cutoff returns the kernel's serial-below threshold in work units.
func (k Kernel) Cutoff() int {
	if k >= numKernels {
		return cutoffs[Generic]
	}
	return cutoffs[k]
}

func (k Kernel) String() string {
	if k >= numKernels {
		return kernelNames[Generic]
	}
	return kernelNames[k]
}

// StealGrain is how many chunks each worker's fair share is split into
// for work-stealing handout: more chunks than workers, so a worker that
// lands a skewed chunk sheds the rest of its range to idle peers, but
// few enough that the per-chunk atomic claim stays negligible.
const StealGrain = 4
