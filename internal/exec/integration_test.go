// Integration test of the execution engine against the real kernels:
// many concurrent jobs, each under its own scheduler grant, share the
// process arena pool while running AIB agglomeration, LIMBO tree builds
// and TANE lattice searches. Results must be bit-identical to the
// serial references no matter how the budgets land. Run with -race —
// this is the suite that catches pooled-scratch aliasing between jobs.
package exec_test

import (
	"context"
	"math/rand"
	"reflect"
	"strconv"
	"sync"
	"testing"

	"structmine/internal/exec"
	"structmine/internal/fd"
	"structmine/internal/ib"
	"structmine/internal/it"
	"structmine/internal/limbo"
	"structmine/internal/relation"
)

func randomRelation(r *rand.Rand, n, m, domain int) *relation.Relation {
	attrs := make([]string, m)
	for i := range attrs {
		attrs[i] = "A" + strconv.Itoa(i)
	}
	b := relation.NewBuilder("rand", attrs)
	row := make([]string, m)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = strconv.Itoa(r.Intn(domain))
		}
		if err := b.Add(row); err != nil {
			panic(err)
		}
	}
	return b.Relation()
}

func randomIBObjects(r *rand.Rand, q, domain, support int) []ib.Object {
	objs := make([]ib.Object, q)
	for i := range objs {
		objs[i] = ib.Object{
			Label: "o" + strconv.Itoa(i),
			P:     1 / float64(q),
			Cond:  it.Uniform(randomSupport(r, domain, support)),
		}
	}
	return objs
}

func randomLimboObjects(r *rand.Rand, n, domain, support int) []limbo.Obj {
	objs := make([]limbo.Obj, n)
	for i := range objs {
		objs[i] = limbo.Obj{
			ID: int32(i), W: 1 / float64(n),
			Cond: it.Uniform(randomSupport(r, domain, support)),
		}
	}
	return objs
}

func randomSupport(r *rand.Rand, domain, support int) []int32 {
	seen := make(map[int32]bool, support)
	vals := make([]int32, 0, support)
	for len(vals) < support {
		v := int32(r.Intn(domain))
		if !seen[v] {
			seen[v] = true
			vals = append(vals, v)
		}
	}
	return vals
}

// limboRun builds the Phase 1 tree and Phase 3 assignment under ctx and
// returns the observable outcome: leaf count plus every object's
// (cluster, loss) pair. All pooled-arena reads happen before the
// caller's grant release.
func limboRun(ctx context.Context, objs []limbo.Obj) (int, []limbo.Assignment) {
	tr := limbo.BuildTreeCtx(ctx, objs, 0.05, 6)
	leaves := tr.Leaves()
	return len(leaves), limbo.AssignCtx(ctx, leaves, objs)
}

// Jobs of three different kernels run concurrently, each under its own
// grant from one shared scheduler, checking scratch out of the shared
// pool. Every job's result must equal the serial reference bit for bit.
func TestConcurrentGrantsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rel := randomRelation(rng, 300, 5, 3)
	ibObjs := randomIBObjects(rng, 40, 64, 8)
	lmObjs := randomLimboObjects(rng, 150, 64, 12)

	wantFDs, err := fd.TANESerial(rel)
	if err != nil {
		t.Fatal(err)
	}
	wantMerges := ib.AgglomerateKSerial(ibObjs, 1).Merges
	wantLeaves, wantAssign := limboRun(context.Background(), lmObjs)

	s := exec.NewScheduler(4)
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(kind int) {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				g := s.Acquire()
				ctx := exec.WithGrant(context.Background(), g)
				switch kind % 3 {
				case 0:
					got, err := fd.TANECtx(ctx, rel)
					if err != nil {
						t.Errorf("TANECtx: %v", err)
					} else if !reflect.DeepEqual(got, wantFDs) {
						t.Errorf("TANE under grant diverged from serial reference")
					}
				case 1:
					got := ib.AgglomerateKCtx(ctx, ibObjs, 1).Merges
					if !reflect.DeepEqual(got, wantMerges) {
						t.Errorf("AIB under grant diverged from serial reference")
					}
				case 2:
					leaves, assign := limboRun(ctx, lmObjs)
					if leaves != wantLeaves || !reflect.DeepEqual(assign, wantAssign) {
						t.Errorf("LIMBO under grant diverged: %d leaves want %d", leaves, wantLeaves)
					}
				}
				g.Release()
			}
		}(i)
	}
	wg.Wait()
}

// The same kernels swept across fixed budgets: any budget in
// {1, 2, 4, 8} must reproduce the serial reference exactly (the
// determinism contract budgets are only allowed to repartition index
// ranges, never change per-index arithmetic).
func TestBudgetSweepBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rel := randomRelation(rng, 200, 5, 3)
	ibObjs := randomIBObjects(rng, 30, 48, 6)
	lmObjs := randomLimboObjects(rng, 120, 48, 10)

	wantFDs, err := fd.TANESerial(rel)
	if err != nil {
		t.Fatal(err)
	}
	wantMerges := ib.AgglomerateKSerial(ibObjs, 1).Merges
	wantLeaves, wantAssign := limboRun(context.Background(), lmObjs)

	for _, budget := range []int{1, 2, 4, 8} {
		ctx := exec.WithWorkers(context.Background(), budget)
		if got, err := fd.TANECtx(ctx, rel); err != nil || !reflect.DeepEqual(got, wantFDs) {
			t.Errorf("budget %d: TANE diverged (err=%v)", budget, err)
		}
		if got := ib.AgglomerateKCtx(ctx, ibObjs, 1).Merges; !reflect.DeepEqual(got, wantMerges) {
			t.Errorf("budget %d: AIB merge sequence diverged", budget)
		}
		if leaves, assign := limboRun(ctx, lmObjs); leaves != wantLeaves || !reflect.DeepEqual(assign, wantAssign) {
			t.Errorf("budget %d: LIMBO outcome diverged", budget)
		}
	}
}
