package exec

import (
	"time"

	"structmine/internal/obs"
)

// Engine metrics on the process-wide registry, served by structmined's
// GET /metrics. They make the fairness story observable rather than
// asserted: grants and granted workers show the budget split, queue
// wait shows whether small jobs stall behind heavy ones, steals show
// the chunk handout correcting skew, and the arena high-water mark
// bounds scratch memory across concurrent jobs.
var (
	execGrantsTotal = obs.Default.Counter("structmine_exec_budget_grants_total",
		"Worker-budget grants issued by the execution scheduler.")
	execActiveGrants = obs.Default.Gauge("structmine_exec_active_grants",
		"Jobs currently holding a worker-budget grant.")
	execGrantedWorkers = obs.Default.Gauge("structmine_exec_granted_workers",
		"Total workers currently allotted across live grants (may exceed capacity when oversubscribed; every grant keeps at least one).")
	execSteals = obs.Default.CounterVec("structmine_exec_steals_total",
		"Chunks executed by a worker outside its home range during work-stealing fan-outs.", "kernel")
	execQueueWait = obs.Default.Histogram("structmine_exec_queue_wait_seconds",
		"Time from job submission to budget grant (queue wait).", obs.TimeBuckets)
	execArenaCheckouts = obs.Default.Counter("structmine_exec_arena_checkouts_total",
		"Arenas checked out of the process pool.")
)

func init() {
	obs.Default.GaugeFunc("structmine_exec_arena_highwater_bytes",
		"Largest per-job arena carve volume seen since process start, in bytes.",
		func() float64 { return float64(arenaHighwater.Load()) })
}

// CountSteals records n stolen chunks for a kernel's fan-out; callers
// batch per worker so the hot loop carries no metric traffic.
func CountSteals(k Kernel, n int) {
	if n > 0 {
		execSteals.With(k.String()).Add(uint64(n))
	}
}

// ObserveQueueWait records the submit→grant latency of one job.
func ObserveQueueWait(d time.Duration) {
	execQueueWait.Observe(d.Seconds())
}
