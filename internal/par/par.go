// Package par holds the single parallel-iteration policy shared by the
// CPU-bound inner loops of the miner: AIB candidate generation and
// post-merge recomputation (internal/ib), LIMBO's Phase 3 assignment
// scan and Phase 1 closest-entry search (internal/limbo), and TANE's
// per-level partition products (internal/fd). It is a thin veneer over
// the execution engine (internal/exec): worker counts come from the
// context's budget (a scheduler grant, a fixed test budget, or the
// GOMAXPROCS fallback), the serial/parallel decision comes from the
// per-kernel cutoff table, and chunks are handed out by work-stealing
// so one skewed chunk cannot serialize the tail.
package par

import (
	"context"
	"sync"
	"sync/atomic"

	"structmine/internal/exec"
)

// For partitions the index range [0, n) across the context's worker
// budget and invokes fn(lo, hi) on each chunk concurrently, returning
// when every index is covered. When the estimated work (in the kernel's
// own units) is below the kernel's cutoff, or the budget is one worker,
// fn runs once on the caller's goroutine as fn(0, n) — no goroutines
// are spawned.
//
// fn must be safe to run concurrently on disjoint ranges: writes must go
// to per-index slots (out[i]) or otherwise not alias across chunks.
// Determinism note: For only partitions the index space; callers that
// need deterministic results must make fn(i) independent of chunk
// boundaries, which every call site in this repo does (pure per-index
// computation into a preallocated slice).
func For(ctx context.Context, k exec.Kernel, n, work int, fn func(lo, hi int)) {
	ForChunk(ctx, k, n, work, func(_, lo, hi int) { fn(lo, hi) })
}

// NumWorkers returns how many workers ForChunk will use for the given
// workload — the bound on the worker index w its callback can see.
// Callers that keep per-worker scratch state (e.g. TANE's probe tables)
// size their scratch slice with it before fanning out, so the workers
// only ever index, never grow, shared state.
func NumWorkers(ctx context.Context, k exec.Kernel, n, work int) int {
	if n <= 0 {
		return 0
	}
	workers := exec.Workers(ctx)
	if workers > n {
		workers = n
	}
	if work < k.Cutoff() || workers < 2 {
		return 1
	}
	return workers
}

// ForChunk is For with the worker index exposed: fn(w, lo, hi) with
// 0 ≤ w < NumWorkers(ctx, k, n, work). Each worker runs on its own
// goroutine (or the caller's, when serial) and claims chunks from a
// shared queue, so state indexed by w is worker-private for the
// duration of the call while skewed chunks still spread across idle
// workers. Chunks a worker executes outside its home range are counted
// as steals in structmine_exec_steals_total.
func ForChunk(ctx context.Context, k exec.Kernel, n, work int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := NumWorkers(ctx, k, n, work)
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	// Work-stealing handout: split the range into StealGrain chunks per
	// worker, claimed off one atomic counter. Claims are in index order,
	// so a worker that finishes its share early continues into a slower
	// peer's range instead of idling at the barrier.
	numChunks := workers * exec.StealGrain
	if numChunks > n {
		numChunks = n
	}
	chunk := (n + numChunks - 1) / numChunks
	numChunks = (n + chunk - 1) / chunk
	perWorker := (numChunks + workers - 1) / workers

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			steals := 0
			for {
				c := int(next.Add(1)) - 1
				if c >= numChunks {
					break
				}
				if c/perWorker != w {
					steals++
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(w, lo, hi)
			}
			exec.CountSteals(k, steals)
		}(w)
	}
	wg.Wait()
}
