// Package par holds the single parallel-iteration policy shared by the
// CPU-bound inner loops of the miner: AIB candidate generation and
// post-merge recomputation (internal/ib), LIMBO's Phase 3 assignment
// scan and Phase 1 closest-entry search (internal/limbo), and TANE's
// per-level partition products (internal/fd). Centralizing the cutoff
// and chunking here keeps the serial/parallel decision consistent across
// call sites and gives tests one knob to reason about.
package par

import (
	"runtime"
	"sync"
)

// Cutoff is the minimum estimated work, in kernel evaluations (δI / JS
// computations or comparable units), below which For runs the loop
// serially. Small workloads are dominated by goroutine startup and
// barrier cost; this value matches the cutoff LIMBO's assignment scan
// shipped with.
const Cutoff = 4096

// For partitions the index range [0, n) into one contiguous chunk per
// available worker and invokes fn(lo, hi) on each chunk concurrently,
// returning when every chunk is done. When the estimated work is below
// Cutoff, or only one P is available, fn runs once on the caller's
// goroutine as fn(0, n) — no goroutines are spawned.
//
// fn must be safe to run concurrently on disjoint ranges: writes must go
// to per-index slots (out[i]) or otherwise not alias across chunks.
// Determinism note: For only partitions the index space; callers that
// need deterministic results must make fn(i) independent of chunk
// boundaries, which every call site in this repo does (pure per-index
// computation into a preallocated slice).
func For(n, work int, fn func(lo, hi int)) {
	ForChunk(n, work, func(_, lo, hi int) { fn(lo, hi) })
}

// NumWorkers returns how many chunks ForChunk will use for the given
// workload — the bound on the chunk index w its callback can see.
// Callers that keep per-worker scratch state (e.g. TANE's probe tables)
// size their scratch slice with it before fanning out, so the workers
// only ever index, never grow, shared state.
func NumWorkers(n, work int) int {
	if n <= 0 {
		return 0
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if work < Cutoff || workers < 2 {
		return 1
	}
	// chunk sizes round up, so the final chunk may be folded away.
	chunk := (n + workers - 1) / workers
	return (n + chunk - 1) / chunk
}

// ForChunk is For with the chunk index exposed: fn(w, lo, hi) with
// 0 ≤ w < NumWorkers(n, work) and w == lo/chunkSize. Each chunk runs on
// its own goroutine (or the caller's, when serial), so state indexed by
// w is worker-private for the duration of the call.
func ForChunk(n, work int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if work < Cutoff || workers < 2 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(lo/chunk, lo, hi)
	}
	wg.Wait()
}
