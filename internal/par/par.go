// Package par holds the single parallel-iteration policy shared by the
// CPU-bound inner loops of the miner: AIB candidate generation and
// post-merge recomputation (internal/ib) and LIMBO's Phase 3 assignment
// scan (internal/limbo). Centralizing the cutoff and chunking here keeps
// the serial/parallel decision consistent across call sites and gives
// tests one knob to reason about.
package par

import (
	"runtime"
	"sync"
)

// Cutoff is the minimum estimated work, in kernel evaluations (δI / JS
// computations or comparable units), below which For runs the loop
// serially. Small workloads are dominated by goroutine startup and
// barrier cost; this value matches the cutoff LIMBO's assignment scan
// shipped with.
const Cutoff = 4096

// For partitions the index range [0, n) into one contiguous chunk per
// available worker and invokes fn(lo, hi) on each chunk concurrently,
// returning when every chunk is done. When the estimated work is below
// Cutoff, or only one P is available, fn runs once on the caller's
// goroutine as fn(0, n) — no goroutines are spawned.
//
// fn must be safe to run concurrently on disjoint ranges: writes must go
// to per-index slots (out[i]) or otherwise not alias across chunks.
// Determinism note: For only partitions the index space; callers that
// need deterministic results must make fn(i) independent of chunk
// boundaries, which every call site in this repo does (pure per-index
// computation into a preallocated slice).
func For(n, work int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if work < Cutoff || workers < 2 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
