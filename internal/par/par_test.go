package par

import (
	"context"
	"sync"
	"testing"

	"structmine/internal/exec"
)

// coverage runs For under a fixed budget and records how many times
// each index was visited.
func coverage(t *testing.T, budget, n, work int) []int32 {
	t.Helper()
	ctx := exec.WithWorkers(context.Background(), budget)
	hits := make([]int32, n)
	var mu sync.Mutex
	For(ctx, exec.Generic, n, work, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad range [%d, %d) for n=%d", lo, hi, n)
		}
		mu.Lock()
		for i := lo; i < hi; i++ {
			hits[i]++
		}
		mu.Unlock()
	})
	return hits
}

func assertEachOnce(t *testing.T, hits []int32) {
	t.Helper()
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForCoversRangeSerial(t *testing.T) {
	// work below the cutoff forces the serial path.
	assertEachOnce(t, coverage(t, 4, 100, 1))
}

func TestForCoversRangeParallel(t *testing.T) {
	for _, budget := range []int{1, 2, 4, 8} {
		assertEachOnce(t, coverage(t, budget, 10_001, exec.Generic.Cutoff()*10))
	}
}

func TestForEmptyAndTiny(t *testing.T) {
	ctx := exec.WithWorkers(context.Background(), 4)
	big := exec.Generic.Cutoff() * 10
	called := false
	For(ctx, exec.Generic, 0, big, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn invoked for n=0")
	}
	For(ctx, exec.Generic, -3, big, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn invoked for n<0")
	}
	// n smaller than the worker budget still covers every index once.
	assertEachOnce(t, coverage(t, 8, 3, big))
}

func TestForParallelWritesDisjointSlots(t *testing.T) {
	ctx := exec.WithWorkers(context.Background(), 4)
	n := 50_000
	out := make([]int, n)
	For(ctx, exec.Generic, n, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = i * i
		}
	})
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// TestForChunkWorkerIndexBounded pins the per-worker scratch contract:
// every w seen by the callback is in [0, NumWorkers) and two goroutines
// never share a w concurrently (checked via a per-w owner slot).
func TestForChunkWorkerIndexBounded(t *testing.T) {
	ctx := exec.WithWorkers(context.Background(), 4)
	n := 40_000
	workers := NumWorkers(ctx, exec.Generic, n, n)
	if workers != 4 {
		t.Fatalf("NumWorkers = %d, want 4", workers)
	}
	busy := make([]sync.Mutex, workers)
	covered := make([]int32, n)
	var mu sync.Mutex
	ForChunk(ctx, exec.Generic, n, n, func(w, lo, hi int) {
		if w < 0 || w >= workers {
			t.Errorf("worker index %d out of [0, %d)", w, workers)
			return
		}
		if !busy[w].TryLock() {
			t.Errorf("worker index %d used concurrently", w)
			return
		}
		defer busy[w].Unlock()
		mu.Lock()
		for i := lo; i < hi; i++ {
			covered[i]++
		}
		mu.Unlock()
	})
	assertEachOnce(t, covered)
}

// TestNumWorkersRespectsBudget: the context budget, not GOMAXPROCS,
// decides the fan-out width (the pre-engine behavior read GOMAXPROCS
// directly, so concurrent jobs oversubscribed cores).
func TestNumWorkersRespectsBudget(t *testing.T) {
	big := exec.Generic.Cutoff() * 10
	for _, budget := range []int{1, 2, 4, 8} {
		ctx := exec.WithWorkers(context.Background(), budget)
		if got := NumWorkers(ctx, exec.Generic, 1<<20, big); got != budget {
			t.Fatalf("budget %d: NumWorkers = %d", budget, got)
		}
	}
	// Below the cutoff the fan-out is always serial.
	ctx := exec.WithWorkers(context.Background(), 8)
	if got := NumWorkers(ctx, exec.Generic, 1<<20, exec.Generic.Cutoff()-1); got != 1 {
		t.Fatalf("below-cutoff NumWorkers = %d, want 1", got)
	}
}
