package par

import (
	"runtime"
	"sync"
	"testing"
)

// coverage runs For and records how many times each index was visited.
func coverage(t *testing.T, n, work int) []int32 {
	t.Helper()
	hits := make([]int32, n)
	var mu sync.Mutex
	For(n, work, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad range [%d, %d) for n=%d", lo, hi, n)
		}
		mu.Lock()
		for i := lo; i < hi; i++ {
			hits[i]++
		}
		mu.Unlock()
	})
	return hits
}

func assertEachOnce(t *testing.T, hits []int32) {
	t.Helper()
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForCoversRangeSerial(t *testing.T) {
	// work below Cutoff forces the serial path.
	assertEachOnce(t, coverage(t, 100, 1))
}

func TestForCoversRangeParallel(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	assertEachOnce(t, coverage(t, 10_001, Cutoff*10))
}

func TestForEmptyAndTiny(t *testing.T) {
	called := false
	For(0, Cutoff*10, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn invoked for n=0")
	}
	For(-3, Cutoff*10, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn invoked for n<0")
	}
	// n smaller than the worker count still covers every index once.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	assertEachOnce(t, coverage(t, 3, Cutoff*10))
}

func TestForParallelWritesDisjointSlots(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	n := 50_000
	out := make([]int, n)
	For(n, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = i * i
		}
	})
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
