// Package joins discovers joinable attribute pairs across relations by
// value-set resemblance — the Bellman-style summaries the paper
// positions its tools against ("identifying co-occurrence of values
// across different relations to identify join paths and correspondences
// between attributes"). The paper's evaluation *assumes* the DB2 join
// R = (E ⋈ D) ⋈ P; a redesign tool working from raw tables first needs
// these candidates.
//
// Each attribute gets a bottom-k hash sketch of its distinct non-NULL
// values (exact sets are kept when small). Jaccard resemblance is
// estimated from merged sketches; directed containment |A∩B| / |A|
// identifies foreign-key-like inclusions even when domains differ in
// size.
package joins

import (
	"hash/fnv"
	"sort"

	"structmine/internal/relation"
)

// SketchSize is k for the bottom-k sketches; sets up to this size are
// represented exactly, so small dimension tables compare exactly.
const SketchSize = 256

// Signature summarizes one attribute's value set.
type Signature struct {
	Relation string
	Attr     string
	// Distinct counts distinct non-NULL values.
	Distinct int
	// hashes is the bottom-k of the value hash set, ascending.
	hashes []uint64
	// exact is true when hashes covers the whole value set.
	exact bool
}

// Signatures sketches every attribute of the relation.
func Signatures(r *relation.Relation) []Signature {
	out := make([]Signature, 0, r.M())
	for a := 0; a < r.M(); a++ {
		set := map[uint64]bool{}
		for t := 0; t < r.N(); t++ {
			if r.IsNull(t, a) {
				continue
			}
			set[hashValue(r.ValueString(r.Value(t, a)))] = true
		}
		hashes := make([]uint64, 0, len(set))
		for h := range set {
			hashes = append(hashes, h)
		}
		sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
		sig := Signature{
			Relation: r.Name,
			Attr:     r.Attrs[a],
			Distinct: len(hashes),
			exact:    len(hashes) <= SketchSize,
		}
		if len(hashes) > SketchSize {
			hashes = hashes[:SketchSize]
		}
		sig.hashes = hashes
		out = append(out, sig)
	}
	return out
}

func hashValue(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// FNV alone is length-biased on short similar strings (e.g. "v7" vs
	// "v1007"), which breaks the uniformity the bottom-k estimator needs;
	// a splitmix64 finalizer restores avalanche.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Resemblance estimates the Jaccard coefficient |A∩B| / |A∪B| of two
// signatures. Exact when both sets fit in the sketch.
func Resemblance(a, b Signature) float64 {
	if a.Distinct == 0 || b.Distinct == 0 {
		return 0
	}
	if a.exact && b.exact {
		inter := intersectSorted(a.hashes, b.hashes)
		union := a.Distinct + b.Distinct - inter
		return float64(inter) / float64(union)
	}
	// Bottom-k of the union; count how many of those lie in both sketches.
	k := minInt(SketchSize, minInt(len(a.hashes)+len(b.hashes), a.Distinct+b.Distinct))
	union := mergeBottomK(a.hashes, b.hashes, k)
	inBoth := 0
	for _, h := range union {
		if containsSorted(a.hashes, h) && containsSorted(b.hashes, h) {
			inBoth++
		}
	}
	if len(union) == 0 {
		return 0
	}
	return float64(inBoth) / float64(len(union))
}

// Containment estimates |A∩B| / |A| — how much of a's value set appears
// in b (1.0 for a foreign key fully covered by its target).
func Containment(a, b Signature) float64 {
	if a.Distinct == 0 {
		return 0
	}
	if a.exact && b.exact {
		return float64(intersectSorted(a.hashes, b.hashes)) / float64(a.Distinct)
	}
	j := Resemblance(a, b)
	if j == 0 {
		return 0
	}
	// |A∩B| = J·|A∪B| and |A∪B| = (|A|+|B|)/(1+J).
	inter := j * float64(a.Distinct+b.Distinct) / (1 + j)
	c := inter / float64(a.Distinct)
	if c > 1 {
		c = 1
	}
	return c
}

// Candidate is one joinable attribute pair, directed: From's values are
// (mostly) contained in To's.
type Candidate struct {
	FromRelation, FromAttr string
	ToRelation, ToAttr     string
	Containment            float64
	Jaccard                float64
	FromDistinct           int
	ToDistinct             int
}

// FindJoinable compares every attribute pair across (and within)
// relations and returns the candidates with containment ≥ minContainment
// and at least minDistinct distinct values, strongest first. Pairs
// within the same relation are included only across different
// attributes (self-correspondences are trivial).
func FindJoinable(rels []*relation.Relation, minContainment float64, minDistinct int) []Candidate {
	if minDistinct < 1 {
		minDistinct = 1
	}
	var sigs []Signature
	for _, r := range rels {
		sigs = append(sigs, Signatures(r)...)
	}
	var out []Candidate
	for i := range sigs {
		for j := range sigs {
			if i == j {
				continue
			}
			a, b := sigs[i], sigs[j]
			if a.Relation == b.Relation && a.Attr == b.Attr {
				continue
			}
			if a.Distinct < minDistinct || b.Distinct < minDistinct {
				continue
			}
			c := Containment(a, b)
			if c < minContainment {
				continue
			}
			out = append(out, Candidate{
				FromRelation: a.Relation, FromAttr: a.Attr,
				ToRelation: b.Relation, ToAttr: b.Attr,
				Containment: c, Jaccard: Resemblance(a, b),
				FromDistinct: a.Distinct, ToDistinct: b.Distinct,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Containment != out[j].Containment {
			return out[i].Containment > out[j].Containment
		}
		if out[i].Jaccard != out[j].Jaccard {
			return out[i].Jaccard > out[j].Jaccard
		}
		if out[i].FromRelation != out[j].FromRelation {
			return out[i].FromRelation < out[j].FromRelation
		}
		return out[i].FromAttr < out[j].FromAttr
	})
	return out
}

func intersectSorted(a, b []uint64) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

func containsSorted(a []uint64, h uint64) bool {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && a[lo] == h
}

func mergeBottomK(a, b []uint64, k int) []uint64 {
	out := make([]uint64, 0, k)
	i, j := 0, 0
	var last uint64
	haveLast := false
	for len(out) < k && (i < len(a) || j < len(b)) {
		var h uint64
		switch {
		case i >= len(a):
			h = b[j]
			j++
		case j >= len(b):
			h = a[i]
			i++
		case a[i] <= b[j]:
			h = a[i]
			i++
		default:
			h = b[j]
			j++
		}
		if haveLast && h == last {
			continue
		}
		out = append(out, h)
		last, haveLast = h, true
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
