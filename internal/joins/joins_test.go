package joins

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"structmine/internal/datagen"
	"structmine/internal/relation"
)

func TestSignaturesBasics(t *testing.T) {
	b := relation.NewBuilder("r", []string{"A", "B"})
	b.MustAdd("x", "1")
	b.MustAdd("y", "")
	b.MustAdd("x", "2")
	r := b.Relation()
	sigs := Signatures(r)
	if len(sigs) != 2 {
		t.Fatalf("signatures %d", len(sigs))
	}
	if sigs[0].Distinct != 2 {
		t.Fatalf("A distinct %d, want 2", sigs[0].Distinct)
	}
	// NULL excluded: B has values {1, 2}.
	if sigs[1].Distinct != 2 {
		t.Fatalf("B distinct %d, want 2 (NULL excluded)", sigs[1].Distinct)
	}
}

func TestResemblanceExact(t *testing.T) {
	mk := func(vals ...string) Signature {
		b := relation.NewBuilder("t", []string{"A"})
		for _, v := range vals {
			b.MustAdd(v)
		}
		return Signatures(b.Relation())[0]
	}
	a := mk("1", "2", "3", "4")
	b := mk("3", "4", "5", "6")
	if j := Resemblance(a, b); math.Abs(j-2.0/6) > 1e-12 {
		t.Fatalf("Jaccard %v, want 1/3", j)
	}
	if j := Resemblance(a, a); j != 1 {
		t.Fatalf("self Jaccard %v", j)
	}
	if c := Containment(a, b); math.Abs(c-0.5) > 1e-12 {
		t.Fatalf("containment %v, want 0.5", c)
	}
	empty := mk()
	if Resemblance(a, empty) != 0 || Containment(empty, a) != 0 {
		t.Fatal("empty signature should resemble nothing")
	}
}

func TestFindJoinableOnDB2Tables(t *testing.T) {
	db, err := datagen.NewDB2Sample()
	if err != nil {
		t.Fatal(err)
	}
	cands := FindJoinable([]*relation.Relation{db.Employee, db.Department, db.Project}, 0.95, 3)

	find := func(fr, fa, tr, ta string) *Candidate {
		for i := range cands {
			c := cands[i]
			if c.FromRelation == fr && c.FromAttr == fa && c.ToRelation == tr && c.ToAttr == ta {
				return &cands[i]
			}
		}
		return nil
	}
	// The two join paths of the paper's construction must surface.
	if c := find("EMPLOYEE", "WorkDepNo", "DEPARTMENT", "DepNo"); c == nil || c.Containment < 0.99 {
		t.Errorf("WorkDepNo ⊆ DepNo not found: %+v", c)
	}
	if c := find("PROJECT", "DeptNo", "DEPARTMENT", "DepNo"); c == nil || c.Containment < 0.99 {
		t.Errorf("Project.DeptNo ⊆ DepNo not found: %+v", c)
	}
	// The project's responsible employee points into EMPLOYEE.EmpNo.
	if c := find("PROJECT", "RespEmpNo", "EMPLOYEE", "EmpNo"); c == nil {
		t.Errorf("RespEmpNo ⊆ EmpNo not found")
	}
	// Sanity: no candidate relates FirstName to DepNo.
	if c := find("EMPLOYEE", "FirstName", "DEPARTMENT", "DepNo"); c != nil {
		t.Errorf("spurious candidate: %+v", c)
	}
}

func TestFindJoinableOrdering(t *testing.T) {
	db, err := datagen.NewDB2Sample()
	if err != nil {
		t.Fatal(err)
	}
	cands := FindJoinable([]*relation.Relation{db.Employee, db.Department}, 0.5, 2)
	for i := 1; i < len(cands); i++ {
		if cands[i].Containment > cands[i-1].Containment+1e-12 {
			t.Fatal("candidates not sorted by containment")
		}
	}
}

// Sketch estimates must track exact Jaccard within tolerance on large
// random sets.
func TestPropSketchAccuracy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 600 + rng.Intn(1000)
		overlap := rng.Intn(n)
		b1 := relation.NewBuilder("a", []string{"V"})
		b2 := relation.NewBuilder("b", []string{"V"})
		for i := 0; i < n; i++ {
			b1.MustAdd(fmt.Sprintf("v%d", i))
			if i < overlap {
				b2.MustAdd(fmt.Sprintf("v%d", i))
			} else {
				b2.MustAdd(fmt.Sprintf("w%d", i))
			}
		}
		s1 := Signatures(b1.Relation())[0]
		s2 := Signatures(b2.Relation())[0]
		exact := float64(overlap) / float64(2*n-overlap)
		est := Resemblance(s1, s2)
		return math.Abs(est-exact) < 0.12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeBottomK(t *testing.T) {
	a := []uint64{1, 3, 5}
	b := []uint64{2, 3, 6}
	got := mergeBottomK(a, b, 4)
	want := []uint64{1, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("merge %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge %v, want %v", got, want)
		}
	}
}

func TestContainsSorted(t *testing.T) {
	a := []uint64{2, 4, 6}
	if !containsSorted(a, 4) || containsSorted(a, 5) || containsSorted(a, 1) || containsSorted(a, 7) {
		t.Fatal("binary search wrong")
	}
	if containsSorted(nil, 1) {
		t.Fatal("empty contains")
	}
}

// Containment on sketched (non-exact) signatures: a strict subset of a
// large set must report containment near 1.
func TestContainmentSketched(t *testing.T) {
	b1 := relation.NewBuilder("small", []string{"V"})
	b2 := relation.NewBuilder("big", []string{"V"})
	for i := 0; i < 2000; i++ {
		b2.MustAdd(fmt.Sprintf("v%d", i))
		if i%3 == 0 {
			b1.MustAdd(fmt.Sprintf("v%d", i))
		}
	}
	s1 := Signatures(b1.Relation())[0]
	s2 := Signatures(b2.Relation())[0]
	if c := Containment(s1, s2); c < 0.85 {
		t.Fatalf("subset containment %v, want ≈1", c)
	}
	// Reverse direction is ≈ 1/3.
	if c := Containment(s2, s1); math.Abs(c-1.0/3) > 0.12 {
		t.Fatalf("reverse containment %v, want ≈0.33", c)
	}
}
