package structmine

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 8), plus micro-benchmarks of the kernels and
// ablations of the design choices called out in DESIGN.md.
//
// The per-experiment benchmarks time the algorithmic pipeline for that
// artifact on the synthetic data sets (generation is excluded from the
// timed region). DBLP-backed benchmarks run at 20k tuples so the whole
// suite completes in minutes; cmd/experiments reproduces the artifacts
// at the paper's full 50k scale.

import (
	"context"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"testing"

	"structmine/internal/attrs"
	"structmine/internal/colstore"
	"structmine/internal/datagen"
	"structmine/internal/experiments"
	"structmine/internal/fd"
	"structmine/internal/fdrank"
	"structmine/internal/ib"
	"structmine/internal/it"
	"structmine/internal/limbo"
	"structmine/internal/measures"
	"structmine/internal/relation"
	"structmine/internal/store"
	"structmine/internal/tuples"
	"structmine/internal/values"
)

const benchDBLPTuples = 20000

func benchDB2(b *testing.B) *relation.Relation {
	b.Helper()
	db, err := datagen.NewDB2Sample()
	if err != nil {
		b.Fatal(err)
	}
	return db.Joined
}

var benchDBLPCache *relation.Relation

func benchDBLP(b *testing.B) *relation.Relation {
	b.Helper()
	if benchDBLPCache == nil {
		benchDBLPCache = datagen.NewDBLP(datagen.DBLPConfig{
			Tuples: benchDBLPTuples, Seed: 1,
			MiscFrac: 129.0 / 50000, JournalFrac: 0.28,
		})
	}
	return benchDBLPCache
}

// --- Table 1: erroneous tuple detection ---

func BenchmarkTable1ErroneousTuples(b *testing.B) {
	r := benchDB2(b)
	inj := datagen.InjectTupleErrors(r, 5, 4, datagen.Typographic, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := tuples.FindDuplicates(inj.Dirty, 0.15, 4)
		if len(rep.Assign) != inj.Dirty.N() {
			b.Fatal("bad report")
		}
	}
}

// --- Table 2: erroneous value placement (double clustering) ---

func BenchmarkTable2ErroneousValues(b *testing.B) {
	r := benchDB2(b)
	inj := datagen.InjectTupleErrors(r, 5, 4, datagen.Typographic, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign, k := tuples.Compress(inj.Dirty, 1.0, 4)
		objs := values.ObjectsOverClusters(inj.Dirty, assign, k)
		vc := values.Cluster(objs, 0.0, 4, inj.Dirty.M())
		if len(vc.Assign) != inj.Dirty.D() {
			b.Fatal("bad clustering")
		}
	}
}

// --- Figure 14: DB2 attribute dendrogram ---

func BenchmarkFigure14DB2Dendrogram(b *testing.B) {
	r := benchDB2(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vc := values.ClusterRelation(r, 0.0, 4)
		g := attrs.Group(r, vc)
		if len(g.Res.Merges) == 0 {
			b.Fatal("no merges")
		}
	}
}

// --- Table 3: DB2 FD discovery + minimum cover + FD-RANK ---

func BenchmarkTable3DB2FDRank(b *testing.B) {
	r := benchDB2(b)
	vc := values.ClusterRelation(r, 0.0, 4)
	g := attrs.Group(r, vc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fds, err := fd.FDEP(r)
		if err != nil {
			b.Fatal(err)
		}
		cover := fd.MinCover(fds)
		ranked := fdrank.Rank(cover, g, 0.5)
		if len(ranked) == 0 {
			b.Fatal("no ranked FDs")
		}
	}
}

// --- Figure 15: DBLP attribute dendrogram via double clustering ---

func BenchmarkFigure15DBLPDendrogram(b *testing.B) {
	r := benchDBLP(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign, k := tuples.Compress(r, 0.5, 4)
		objs := values.ObjectsOverClusters(r, assign, k)
		vc := values.Cluster(objs, 1.0, 4, r.M())
		g := attrs.Group(r, vc)
		if len(g.AttrIdx) == 0 {
			b.Fatal("empty grouping")
		}
	}
}

// --- Table 4: horizontal partitioning of the DBLP projection ---

func BenchmarkTable4HorizontalPartition(b *testing.B) {
	r := benchDBLP(b)
	proj := r.Project(datagen.ProjectionAttrs())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := tuples.Partition(proj, 100, 4, 3)
		if len(res.Clusters) != 3 {
			b.Fatal("bad partition")
		}
	}
}

// --- Figures 16-18: per-cluster attribute dendrograms ---

func BenchmarkFigure16to18ClusterDendrograms(b *testing.B) {
	r := benchDBLP(b)
	proj := r.Project(datagen.ProjectionAttrs())
	part := tuples.Partition(proj, 100, 4, 3)
	subs := make([]*relation.Relation, len(part.Clusters))
	for i, cluster := range part.Clusters {
		subs[i] = proj.Select(cluster)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sub := range subs {
			assign, k := tuples.Compress(sub, 0.5, 4)
			objs := values.ObjectsOverClusters(sub, assign, k)
			vc := values.Cluster(objs, 1.0, 4, sub.M())
			attrs.Group(sub, vc)
		}
	}
}

// --- Tables 5-6: per-cluster FD mining + ranking ---

func benchClusterFDs(b *testing.B, wantType string) {
	r := benchDBLP(b)
	proj := r.Project(datagen.ProjectionAttrs())
	part := tuples.Partition(proj, 100, 4, 3)
	var sub *relation.Relation
	for _, cluster := range part.Clusters {
		s := proj.Select(cluster)
		if clusterType(s) == wantType {
			sub = s
			break
		}
	}
	if sub == nil {
		b.Skipf("no %s cluster at this scale", wantType)
	}
	assign, k := tuples.Compress(sub, 0.5, 4)
	objs := values.ObjectsOverClusters(sub, assign, k)
	vc := values.Cluster(objs, 1.0, 4, sub.M())
	g := attrs.Group(sub, vc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fds, err := fd.TANE(sub)
		if err != nil {
			b.Fatal(err)
		}
		cover := fd.MinCover(fds)
		fdrank.Rank(cover, g, 0.5)
	}
}

func clusterType(sub *relation.Relation) string {
	bt := sub.AttrIndex("BookTitle")
	jr := sub.AttrIndex("Journal")
	conf, jour, misc := 0, 0, 0
	for t := 0; t < sub.N(); t++ {
		switch {
		case !sub.IsNull(t, bt):
			conf++
		case !sub.IsNull(t, jr):
			jour++
		default:
			misc++
		}
	}
	switch {
	case conf >= jour && conf >= misc:
		return "conference"
	case jour >= misc:
		return "journal"
	default:
		return "misc"
	}
}

func BenchmarkTable5Cluster1FDs(b *testing.B) { benchClusterFDs(b, "conference") }
func BenchmarkTable6Cluster2FDs(b *testing.B) { benchClusterFDs(b, "journal") }

// --- end-to-end experiment drivers (quick scale) ---

func BenchmarkExperimentSuiteQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reports := experiments.All(experiments.QuickScale())
		if len(reports) != 10 {
			b.Fatalf("expected 10 reports, got %d", len(reports))
		}
	}
}

// --- micro-benchmarks of the kernels ---

func benchVec(n int, seed int64) it.Vec {
	rng := rand.New(rand.NewSource(seed))
	es := make([]it.Entry, n)
	for i := range es {
		es[i] = it.Entry{Idx: int32(i * 3), P: rng.Float64() + 0.01}
	}
	return it.NewVec(es).Normalize()
}

func BenchmarkMicroEntropy(b *testing.B) {
	v := benchVec(1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Entropy(v)
	}
}

func BenchmarkMicroJS(b *testing.B) {
	p := benchVec(1024, 1)
	q := benchVec(1024, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.JS(0.4, p, 0.6, q)
	}
}

// BenchmarkMicroDeltaISmallVsLarge shows the weighted-sum identity's
// payoff: δI between a 16-coordinate object and a 100k-coordinate
// cluster costs O(16), not O(100k).
func BenchmarkMicroDeltaISmallVsLarge(b *testing.B) {
	big := limbo.NewDCF(limbo.Obj{ID: 0, W: 0.9, Cond: benchVec(100000, 1)})
	small := limbo.Obj{ID: 1, W: 0.1, Cond: benchVec(16, 2)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		big.DeltaIObj(small)
	}
}

func BenchmarkMicroDCFTreeInsert(b *testing.B) {
	r := benchDBLP(b)
	objs := tuples.Objects(r)
	tau := limbo.Threshold(0.5, limbo.MutualInfo(objs), len(objs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := limbo.NewTree(limbo.Config{B: 4, Threshold: tau})
		for _, o := range objs {
			tree.Insert(o)
		}
	}
	b.ReportMetric(float64(len(objs)), "tuples/op")
}

// BenchmarkDCFTreeInsert streams datagen DBLP tuples at several scales
// through Phase 1 — the sized companion to BenchmarkMicroDCFTreeInsert,
// showing how the flat-sparse kernels and tree-owned arena scale with
// the instance (generation is excluded from the timed region).
func BenchmarkDCFTreeInsert(b *testing.B) {
	for _, n := range []int{5000, 10000, 20000} {
		r := datagen.NewDBLP(datagen.DBLPConfig{
			Tuples: n, Seed: 1, MiscFrac: 129.0 / 50000, JournalFrac: 0.28,
		})
		objs := tuples.Objects(r)
		tau := limbo.Threshold(0.5, limbo.MutualInfo(objs), len(objs))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tree := limbo.NewTree(limbo.Config{B: 4, Threshold: tau})
				for _, o := range objs {
					tree.Insert(o)
				}
			}
			b.ReportMetric(float64(len(objs)), "tuples/op")
		})
	}
}

// BenchmarkTANE mines the datagen relations end to end: the DB2-style
// join sample and the DBLP instance (projection and full arity) at the
// suite's 20k scale — the workloads whose per-level partition products
// the arena layout and per-worker probe tables target.
func BenchmarkTANE(b *testing.B) {
	run := func(name string, r *relation.Relation) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fds, err := fd.TANE(r)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(fds)), "fds")
			}
		})
	}
	run("db2", benchDB2(b))
	run("dblp-proj/n=20000", benchDBLP(b).Project(datagen.ProjectionAttrs()))
	run("dblp-full/n=20000", benchDBLP(b))
}

// benchColstore writes the 20k-tuple DBLP projection to a colstore
// file once per process and opens it for the paged benchmark legs.
func benchColstore(b *testing.B) (*relation.Relation, *colstore.Table) {
	r := benchDBLP(b).Project(datagen.ProjectionAttrs())
	meta := store.DatasetMeta{
		Hash: fmt.Sprintf("%x", sha256.Sum256([]byte("bench-colstore"))),
		Name: "bench", Source: "bench", Bytes: 0,
	}
	path, err := colstore.WriteFromRelation(b.TempDir(), meta, r, colstore.WriteOptions{})
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := colstore.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { tbl.Close() })
	return r, tbl
}

// BenchmarkPagedScan sweeps every stripe of every column of the
// 20k-tuple DBLP relation through relation.ScanStripes — the fanned,
// batched read path the paged miners sit on — once over the resident
// adapter and once over an mmap-backed colstore table. CI runs both
// legs at -cpu 1,4 and gates the paged/resident ratio at 4 cpus (warn
// >1.5x, fail >2x; see scripts/benchcmp.sh --parity), so the
// out-of-core read overhead is measured rather than assumed.
func BenchmarkPagedScan(b *testing.B) {
	r, tbl := benchColstore(b)
	scan := func(b *testing.B, c relation.Columns) {
		attrs := make([]int, c.M())
		for a := range attrs {
			attrs[a] = a
		}
		ctx := context.Background()
		var sum int64
		for i := 0; i < b.N; i++ {
			sums := make([]int64, relation.ScanWorkers(ctx, c, len(attrs)))
			err := relation.ScanStripes(ctx, c, attrs, func(w, p int, cols [][]int32) error {
				for _, col := range cols {
					for _, v := range col {
						sums[w] += int64(v)
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, s := range sums {
				sum += s
			}
		}
		if sum == 0 && c.N() > 0 {
			b.Fatal("scan read nothing")
		}
		b.SetBytes(int64(c.N()) * int64(c.M()) * 4)
	}
	b.Run("resident", func(b *testing.B) { scan(b, relation.AsColumns(r)) })
	b.Run("paged", func(b *testing.B) { scan(b, tbl) })
}

// BenchmarkPagedTANE mines the same relation through both serving
// paths — the resident row pipeline and column discovery over the
// paged table (whose level-1 partitions come straight from the value
// index) — timing the full dependency-discovery pipeline each way.
// CI gates the paged/resident ratio alongside BenchmarkPagedScan.
func BenchmarkPagedTANE(b *testing.B) {
	r, tbl := benchColstore(b)
	b.Run("resident", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fd.TANE(r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("paged", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fd.DiscoverColumns(context.Background(), tbl); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAppendRemine is the incremental-mining cost gate: after a 1%
// append, re-mining through the persisted FD state (decode, extend the
// value partitions by the appended rows, re-check only the touched
// dependencies) must be far cheaper than mining the appended relation
// from scratch. The appended rows duplicate existing tuples, so the
// delta path genuinely engages — duplicates can never break an FD — and
// both paths return the identical minimal set. CI runs this pair and
// fails if full/delta falls below the ratio floor (see the incremental
// job and scripts/benchcmp.sh --ratio).
func BenchmarkAppendRemine(b *testing.B) {
	base := benchDBLP(b).Project(datagen.ProjectionAttrs())
	k := base.N() / 100
	rows := make([][]string, k)
	for i := range rows {
		rows[i] = base.TupleStrings(i)
	}
	ext, err := base.Extend(rows)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	baseFDs, err := fd.DiscoverCtx(ctx, base)
	if err != nil {
		b.Fatal(err)
	}
	state := fd.EncodeState(fd.NewMineState(base, baseFDs))

	prev, err := fd.DecodeState(state)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, delta, err := fd.DiscoverDelta(ctx, ext, prev); err != nil || !delta {
		b.Fatalf("delta path did not engage: delta=%v err=%v", delta, err)
	}

	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fd.DiscoverCtx(ctx, ext); err != nil {
				b.Fatal(err)
			}
		}
	})
	// State decode sits inside the timed region: the server pays it on
	// every delta re-mine, so the gate must too.
	b.Run("delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prev, err := fd.DecodeState(state)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, delta, err := fd.DiscoverDelta(ctx, ext, prev); err != nil || !delta {
				b.Fatalf("delta=%v err=%v", delta, err)
			}
		}
	})
}

func BenchmarkMicroAIB(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	objs := make([]ib.Object, 200)
	for i := range objs {
		es := make([]it.Entry, 8)
		for j := range es {
			es[j] = it.Entry{Idx: int32(rng.Intn(64)), P: rng.Float64() + 0.01}
		}
		objs[i] = ib.Object{Label: fmt.Sprint(i), P: 1.0 / 200, Cond: it.NewVec(es).Normalize()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ib.Agglomerate(objs)
	}
}

// benchAIBObjects builds q random objects with small sparse supports over
// a bounded domain, the shape the AIB engine sees from LIMBO Phase 2 leaf
// summaries.
func benchAIBObjects(q int) []ib.Object {
	rng := rand.New(rand.NewSource(17))
	objs := make([]ib.Object, q)
	for i := range objs {
		es := make([]it.Entry, 8)
		for j := range es {
			es[j] = it.Entry{Idx: int32(rng.Intn(256)), P: rng.Float64() + 0.01}
		}
		objs[i] = ib.Object{Label: fmt.Sprint(i), P: 1 / float64(q), Cond: it.NewVec(es).Normalize()}
	}
	return objs
}

// BenchmarkAIBInit isolates candidate initialization: parallel δI over
// the q(q−1)/2 initial pairs plus the single O(q²) heapify, with one
// merge step (k = q−1) so the engine path is fully exercised.
func BenchmarkAIBInit(b *testing.B) {
	for _, q := range []int{512, 1024, 2048} {
		objs := benchAIBObjects(q)
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ib.AgglomerateK(objs, q-1)
			}
		})
	}
}

// BenchmarkAgglomerate runs the full merge sequence with the parallel
// engine and the retained serial reference at matched inputs; the ratio
// is the tentpole's speedup figure (scripts/bench.sh records both).
func BenchmarkAgglomerate(b *testing.B) {
	for _, q := range []int{512, 1024, 2048} {
		objs := benchAIBObjects(q)
		b.Run(fmt.Sprintf("parallel/q=%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ib.Agglomerate(objs)
			}
		})
		b.Run(fmt.Sprintf("serial/q=%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ib.AgglomerateSerial(objs)
			}
		})
	}
}

func BenchmarkMicroFDEP(b *testing.B) {
	r := benchDB2(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fd.FDEP(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroTANE(b *testing.B) {
	r := benchDB2(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fd.TANE(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroMinCover(b *testing.B) {
	r := benchDB2(b)
	fds, err := fd.FDEP(r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd.MinCover(fds)
	}
}

func BenchmarkMicroRADRTR(b *testing.B) {
	r := benchDBLP(b)
	ix := []int{2, 7, 8, 9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		measures.RAD(r, ix)
		measures.RTR(r, ix)
	}
}

// --- ablations ---

// BenchmarkAblationBranchingFactor varies the DCF-tree fanout B; the
// paper reports B does not significantly affect quality and uses B=4
// for insertion speed.
func BenchmarkAblationBranchingFactor(b *testing.B) {
	r := benchDBLP(b)
	objs := tuples.Objects(r)
	tau := limbo.Threshold(0.5, limbo.MutualInfo(objs), len(objs))
	for _, fan := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("B=%d", fan), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tree := limbo.NewTree(limbo.Config{B: fan, Threshold: tau})
				for _, o := range objs {
					tree.Insert(o)
				}
				b.ReportMetric(float64(tree.LeafCount()), "leaves")
			}
		})
	}
}

// BenchmarkAblationPhi varies φT: larger φ creates coarser summaries
// (fewer leaves) with faster insertion.
func BenchmarkAblationPhi(b *testing.B) {
	r := benchDBLP(b)
	objs := tuples.Objects(r)
	mi := limbo.MutualInfo(objs)
	for _, phi := range []float64{0.25, 0.5, 1.0, 2.0} {
		b.Run(fmt.Sprintf("phi=%.2f", phi), func(b *testing.B) {
			tau := limbo.Threshold(phi, mi, len(objs))
			for i := 0; i < b.N; i++ {
				tree := limbo.NewTree(limbo.Config{B: 4, Threshold: tau})
				for _, o := range objs {
					tree.Insert(o)
				}
				b.ReportMetric(float64(tree.LeafCount()), "leaves")
			}
		})
	}
}

// BenchmarkAblationDoubleClustering compares direct value clustering
// with double clustering on a mid-size instance — the paper's Section
// 6.2 scalability argument.
func BenchmarkAblationDoubleClustering(b *testing.B) {
	r := datagen.NewDBLP(datagen.DBLPConfig{Tuples: 4000, Seed: 1, MiscFrac: 0.002, JournalFrac: 0.28})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			values.Cluster(values.Objects(r), 1.0, 4, r.M())
		}
	})
	b.Run("double", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			assign, k := tuples.Compress(r, 0.5, 4)
			values.Cluster(values.ObjectsOverClusters(r, assign, k), 1.0, 4, r.M())
		}
	})
}

// BenchmarkAblationFDEPvsTANE sweeps the instance size to expose the
// crossover between the pairwise FDEP and the level-wise TANE — the
// reason Discover dispatches on size.
func BenchmarkAblationFDEPvsTANE(b *testing.B) {
	base := benchDBLP(b)
	proj := base.Project(datagen.ProjectionAttrs())
	for _, n := range []int{100, 400, 1600} {
		rows := make([]int, n)
		for i := range rows {
			rows[i] = i * (proj.N() / n)
		}
		sub := proj.Select(rows)
		b.Run(fmt.Sprintf("FDEP/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fd.FDEP(sub); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("TANE/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fd.TANE(sub); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationApproxFDs times the approximate miner against the
// exact one at matched scope.
func BenchmarkAblationApproxFDs(b *testing.B) {
	r := benchDB2(b)
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fd.MineApprox(r, 0, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eps=0.05", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fd.MineApprox(r, 0.05, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}
