module structmine

go 1.22
